// NaiveInfer (Section 3.2.1): propose a view for every value of every
// categorical attribute; under EarlyDisjuncts additionally propose
// disjunctive subset conditions (exponential in the cardinality, guarded by
// ContextMatchOptions::naive_disjunct_limit).

#ifndef CSM_CORE_NAIVE_INFER_H_
#define CSM_CORE_NAIVE_INFER_H_

#include "core/view_inference.h"

namespace csm {

class NaiveInfer : public ViewInference {
 public:
  /// `max_label_cardinality` skips categorical attributes with more
  /// distinct values than this (same guard ClusteredViewGen applies).
  NaiveInfer(CategoricalOptions categorical, size_t disjunct_limit,
             size_t max_label_cardinality)
      : categorical_(categorical),
        disjunct_limit_(disjunct_limit),
        max_label_cardinality_(max_label_cardinality) {}

  std::string Name() const override { return "NaiveInfer"; }

  std::vector<CandidateView> InferCandidateViews(const InferenceInput& input,
                                                 Rng& rng) override;

 private:
  CategoricalOptions categorical_;
  size_t disjunct_limit_;
  size_t max_label_cardinality_;
};

}  // namespace csm

#endif  // CSM_CORE_NAIVE_INFER_H_
