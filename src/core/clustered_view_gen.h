// Algorithm ClusteredViewGen (Fig. 6) and its disjunctive extension
// (Section 3.3).
//
// For each (non-categorical attribute h, categorical attribute l) pair the
// values of h are treated as documents, the values of l as classification
// labels, and the tuples as the expert assignment.  A classifier h -> l is
// trained on one random subset of the sample (doTraining) and tested on the
// rest (doTesting); if its micro-averaged F1 is significantly better than
// the random-label null hypothesis (see stats/significance.h) the view
// family partitioning R on l is considered well-clustered and returned.
//
// Under EarlyDisjuncts the most frequent (frequency-normalized) error pair
// (v, v') is repeatedly merged into a disjunct l IN {v, v'} and the
// train/test cycle repeats, emitting every grouping that passes the
// significance gate, until testing is error-free or no values remain to
// merge.

#ifndef CSM_CORE_CLUSTERED_VIEW_GEN_H_
#define CSM_CORE_CLUSTERED_VIEW_GEN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/random.h"
#include "core/context_options.h"
#include "exec/thread_pool.h"
#include "ml/classifier.h"
#include "obs/hooks.h"
#include "relational/table.h"
#include "relational/table_view.h"
#include "relational/view.h"

namespace csm {

/// Builds a fresh classifier suited to evidence attribute values of
/// `evidence_type` (SrcClassInfer: NB for strings, Gaussian for numerics;
/// TgtClassInfer: the tag-and-bestCAT wrapper).
using ClassifierFactory =
    std::function<std::unique_ptr<ValueClassifier>(ValueType evidence_type)>;

/// Runs ClusteredViewGen over every (h, l) pair of `source_sample` — a
/// zero-copy TableView (a Table converts implicitly) — and
/// returns the accepted well-clustered view families, deduplicated by
/// (label attribute, partition) keeping the most significant evidence.
///
/// `label_attributes` / `evidence_attributes` default (when empty) to the
/// categorical / non-categorical attributes of the sample under
/// `categorical`.
///
/// When `pool` is non-null the (l, h) classifier grid is trained and
/// evaluated concurrently, one task per cell.  Each cell derives its own
/// RNG stream from a single seed drawn from `rng` (exec/task_rng.h) and the
/// per-cell results are merged in grid order, so the output is identical at
/// any pool size — including the serial `pool == nullptr` path.  `factory`
/// must be safe to invoke concurrently (both built-in factories are: they
/// only read captured state).
///
/// `obs` optionally records one span and one "inference.cell_seconds"
/// histogram observation per grid cell (plus an "inference.grid_cells"
/// counter).  Observation never affects the emitted families.
///
/// `cancel` makes the grid cooperative: workers poll the token between
/// cell claims and drain once it is cancelled, so only a subset of cells
/// contributes.  Callers must then treat the returned families as
/// incomplete.  The "inference.cell" FaultInjector site fires once per
/// cell (cell grid index) before the cell trains; a kFail arm drops just
/// that cell's families.
///
/// Degenerate inputs return cleanly and empty: tables with fewer than two
/// rows (nothing to split into train/test), label attributes that are
/// all-NULL or whose distinct-value count is outside [2,
/// max_label_cardinality], and cells whose test side ends up empty (the
/// significance gate needs test evidence) all emit no families.
std::vector<ViewFamily> ClusteredViewGen(
    const TableView& source_sample, const ClassifierFactory& factory,
    const ClusteredViewGenOptions& options,
    const CategoricalOptions& categorical, bool early_disjuncts, Rng& rng,
    std::vector<std::string> label_attributes = {},
    std::vector<std::string> evidence_attributes = {},
    exec::ThreadPool* pool = nullptr, const obs::ObsHooks& obs = {},
    const CancellationToken* cancel = nullptr);

}  // namespace csm

#endif  // CSM_CORE_CLUSTERED_VIEW_GEN_H_
