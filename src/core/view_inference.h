// The InferCandidateViews abstraction of Algorithm ContextMatch (Fig. 5,
// line 5): given a source table's sample, the accepted standard matches and
// the target sample, propose candidate view conditions to evaluate.

#ifndef CSM_CORE_VIEW_INFERENCE_H_
#define CSM_CORE_VIEW_INFERENCE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/random.h"
#include "core/context_options.h"
#include "exec/thread_pool.h"
#include "match/match_types.h"
#include "obs/hooks.h"
#include "relational/table.h"
#include "relational/table_view.h"
#include "relational/view.h"

namespace csm {

/// Inputs shared by all inference strategies.
struct InferenceInput {
  /// Sample of the source table Rs currently being matched: a zero-copy
  /// view over the engine's sample table.  At stage 1 this is the identity
  /// view; at conjunctive stages >= 2 it is the stage condition's PosList
  /// over the same base (no materialized copy).  A Table converts
  /// implicitly, so `input.source_sample = table;` still works; the viewed
  /// base must outlive the inference call.
  TableView source_sample;
  /// Sample of the whole target database (used by TgtClassInfer).
  const Database* target_sample = nullptr;
  /// Accepted standard matches from `source_sample` (no conditions are
  /// inferred when empty, per Fig. 5).
  const MatchList* matches = nullptr;
  /// EarlyDisjuncts: propose disjunctive conditions during inference.
  bool early_disjuncts = false;
  /// Attributes that may not participate in partitioning (the conjunctive
  /// iteration of Section 3.5 excludes attributes already in the stage's
  /// condition).
  std::vector<std::string> excluded_partition_attributes;
  /// Optional worker pool for the classifier-grid strategies; null runs the
  /// exact serial path.  Results are identical either way (see
  /// ClusteredViewGen).
  exec::ThreadPool* pool = nullptr;
  /// Optional tracing/metrics sinks (spans and an "inference.cell_seconds"
  /// histogram per classifier-grid cell).  Default hooks are all-null and
  /// record nothing; observation never feeds back into the results.
  obs::ObsHooks obs;
  /// Optional cooperative-cancellation token.  Once cancelled, the grid
  /// strategies drain (claimed cells finish, unclaimed cells are skipped)
  /// and return early; the caller must treat the candidates as incomplete
  /// (the pipeline discards the whole stage — see DESIGN.md "Failure
  /// model, deadlines & degradation").
  const CancellationToken* cancel = nullptr;
};

/// One proposed candidate view plus the evidence that produced it.
struct CandidateView {
  View view;
  /// Classifier quality of the family this view came from (0 for NaiveInfer).
  double family_f1 = 0.0;
  double family_significance = 0.0;
  /// Evidence attribute h (empty for NaiveInfer).
  std::string evidence_attribute;
};

/// Strategy interface; implementations are NaiveInfer, SrcClassInfer and
/// TgtClassInfer (Section 3.2).
class ViewInference {
 public:
  virtual ~ViewInference() = default;

  virtual std::string Name() const = 0;

  /// Proposes candidate views.  Deterministic given `rng`'s state.
  virtual std::vector<CandidateView> InferCandidateViews(
      const InferenceInput& input, Rng& rng) = 0;
};

/// Factory for the strategy selected in ContextMatchOptions.
std::unique_ptr<ViewInference> MakeViewInference(
    ViewInferenceKind kind, const ContextMatchOptions& options);

/// Removes candidates whose (base table, condition) duplicates an earlier
/// candidate, keeping the first (highest-evidence) occurrence.
std::vector<CandidateView> DeduplicateCandidates(
    std::vector<CandidateView> candidates);

}  // namespace csm

#endif  // CSM_CORE_VIEW_INFERENCE_H_
