#include "core/naive_infer.h"

#include <algorithm>

#include "relational/categorical.h"

namespace csm {

std::vector<CandidateView> NaiveInfer::InferCandidateViews(
    const InferenceInput& input, Rng& rng) {
  (void)rng;  // NaiveInfer is deterministic.
  std::vector<CandidateView> out;
  if (input.matches == nullptr || input.matches->empty()) return out;
  if (!input.source_sample.valid()) return out;
  const TableView& source = input.source_sample;

  const auto& excluded = input.excluded_partition_attributes;
  for (const std::string& l : CategoricalAttributes(source, categorical_)) {
    if (std::find(excluded.begin(), excluded.end(), l) != excluded.end()) {
      continue;
    }
    std::vector<Value> values;
    for (const auto& [value, count] : source.ValueCounts(l)) {
      values.push_back(value);
    }
    if (values.size() > max_label_cardinality_) continue;
    // Simple conditions: one view per value.
    for (const Value& value : values) {
      CandidateView candidate;
      candidate.view = View(
          source.name() + "[" + l + "=" + value.ToString() + "]",
          source.name(), Condition::Equals(l, value));
      out.push_back(std::move(candidate));
    }
    // Disjunctive subset conditions under EarlyDisjuncts.  Every non-empty
    // proper subset of size >= 2 becomes a candidate; this is the
    // exponential enumeration the paper warns about (Section 3.3), bounded
    // by `disjunct_limit_` to keep it runnable.
    if (!input.early_disjuncts) continue;
    const size_t n = values.size();
    if (n < 3 || n > disjunct_limit_) continue;
    const uint64_t limit = uint64_t{1} << n;
    for (uint64_t mask = 1; mask + 1 < limit; ++mask) {
      // Skip singletons (already emitted) and require >= 2 members.
      if ((mask & (mask - 1)) == 0) continue;
      std::vector<Value> subset;
      std::string label;
      for (size_t i = 0; i < n; ++i) {
        if ((mask >> i) & 1) {
          subset.push_back(values[i]);
          if (!label.empty()) label += "|";
          label += values[i].ToString();
        }
      }
      CandidateView candidate;
      candidate.view =
          View(source.name() + "[" + l + "=" + label + "]", source.name(),
               Condition::In(l, std::move(subset)));
      out.push_back(std::move(candidate));
    }
  }
  return DeduplicateCandidates(std::move(out));
}

}  // namespace csm
