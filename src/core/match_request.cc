#include "core/match_request.h"

namespace csm {

const char* MatchModeToString(MatchMode mode) {
  switch (mode) {
    case MatchMode::kContext:
      return "context";
    case MatchMode::kConjunctive:
      return "conjunctive";
    case MatchMode::kTargetContext:
      return "target_context";
  }
  return "unknown";
}

}  // namespace csm
