#include "core/clustered_view_gen.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include <chrono>

#include "common/fault_injector.h"
#include "common/logging.h"
#include "exec/parallel.h"
#include "exec/task_rng.h"
#include "ml/evaluation.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/categorical.h"
#include "relational/column.h"
#include "relational/sample.h"
#include "stats/significance.h"
#include "text/gram.h"

namespace csm {
namespace {

/// Tracks the current grouping of label values; a "group" becomes one view
/// of the family (a disjunct after merges).
class LabelGrouping {
 public:
  explicit LabelGrouping(const std::map<Value, size_t>& value_counts) {
    for (const auto& [value, count] : value_counts) {
      groups_.push_back({value});
    }
  }

  size_t num_groups() const { return groups_.size(); }

  /// The group token (classifier label) for a label value; "" if unknown.
  std::string TokenFor(const Value& value) const {
    for (size_t g = 0; g < groups_.size(); ++g) {
      for (const Value& member : groups_[g]) {
        if (member == value) return Token(g);
      }
    }
    return "";
  }

  /// Canonical token of group `g`: member strings joined by '\x1f'.
  std::string Token(size_t g) const {
    std::string out;
    for (const Value& member : groups_[g]) {
      if (!out.empty()) out += '\x1f';
      out += member.ToString();
    }
    return out;
  }

  /// Merges the groups whose tokens are `a` and `b`; returns false if
  /// either token is unknown or they are the same group.
  bool MergeByTokens(const std::string& a, const std::string& b) {
    int ga = -1, gb = -1;
    for (size_t g = 0; g < groups_.size(); ++g) {
      if (Token(g) == a) ga = static_cast<int>(g);
      if (Token(g) == b) gb = static_cast<int>(g);
    }
    if (ga < 0 || gb < 0 || ga == gb) return false;
    auto& dst = groups_[static_cast<size_t>(std::min(ga, gb))];
    auto& src = groups_[static_cast<size_t>(std::max(ga, gb))];
    dst.insert(dst.end(), src.begin(), src.end());
    std::sort(dst.begin(), dst.end());
    groups_.erase(groups_.begin() + std::max(ga, gb));
    return true;
  }

  const std::vector<std::vector<Value>>& groups() const { return groups_; }

  /// Canonical serialization of the whole partition (dedup key).
  std::string PartitionKey() const {
    std::vector<std::string> tokens;
    tokens.reserve(groups_.size());
    for (size_t g = 0; g < groups_.size(); ++g) tokens.push_back(Token(g));
    std::sort(tokens.begin(), tokens.end());
    std::string out;
    for (const auto& token : tokens) {
      out += token;
      out += '\x1e';
    }
    return out;
  }

 private:
  std::vector<std::vector<Value>> groups_;
};

/// Builds the view family for a grouping of label attribute `l` on `table`.
ViewFamily FamilyFromGrouping(const TableView& table, const std::string& l,
                              const LabelGrouping& grouping) {
  ViewFamily family;
  family.base_table = table.name();
  family.label_attribute = l;
  for (const auto& group : grouping.groups()) {
    std::string view_name = table.name() + "[" + l + "=";
    for (size_t i = 0; i < group.size(); ++i) {
      if (i > 0) view_name += "|";
      view_name += group[i].ToString();
    }
    view_name += "]";
    family.views.emplace_back(view_name, table.name(),
                              Condition::In(l, group));
  }
  return family;
}

struct TrainTestOutcome {
  ClassifierEvaluation eval;
  double most_common_fraction = 0.0;
  size_t train_count = 0;
};

/// Per-cycle typed reader state for one attribute: when the backing base
/// column is a dictionary-encoded string column, rows are read as codes
/// (kNullCode == NULL) and handed to the classifier's coded fast path;
/// otherwise rows box through ValueAt exactly as before.  Both train and
/// test views share the same base table, so one codec serves both loops.
struct ColumnCodec {
  const Column* column = nullptr;  // base segment (read through positions)
  bool coded = false;

  ColumnCodec(const TableView& view, size_t view_col) {
    column = &view.column(view_col);
    coded = column->type() == ValueType::kString;
  }
};

/// One doTraining + doTesting cycle for (h, l) under `grouping`.  Reads
/// both sides through zero-copy views; label-value -> group-token lookups
/// go through a map built once per cycle (label values are unique across
/// groups, so this is exactly LabelGrouping::TokenFor, minus the linear
/// scan per row).  String-coded label and evidence columns skip Value
/// boxing entirely: label tokens resolve by dictionary code, and evidence
/// cells flow through TrainCoded/ClassifyCoded so the classifier can
/// memoize per distinct value — the call sequence (and therefore every
/// score) is identical to the boxed path.
TrainTestOutcome RunCycle(const TrainTestViewSplit& split, size_t h_col,
                          size_t l_col, const LabelGrouping& grouping,
                          const ClassifierFactory& factory,
                          ValueType h_type) {
  TrainTestOutcome out;
  std::unique_ptr<ValueClassifier> classifier = factory(h_type);
  CSM_CHECK(classifier != nullptr);

  std::map<Value, std::string> token_of;
  for (size_t g = 0; g < grouping.groups().size(); ++g) {
    const std::string token = grouping.Token(g);
    for (const Value& member : grouping.groups()[g]) {
      token_of.emplace(member, token);
    }
  }
  auto token_for = [&token_of](const Value& value) -> const std::string* {
    auto it = token_of.find(value);
    return it == token_of.end() ? nullptr : &it->second;
  };

  const ColumnCodec l_codec(split.train, l_col);
  const ColumnCodec h_codec(split.train, h_col);

  // Code -> group token for a coded label column.  Tokens cover exactly the
  // values token_of covers: a grouping value missing from the dictionary
  // never occurs in any row, so both lookups skip the same rows.
  std::unordered_map<uint32_t, const std::string*> token_by_code;
  if (l_codec.coded) {
    token_by_code.reserve(token_of.size());
    for (const auto& [value, token] : token_of) {
      if (value.type() != ValueType::kString) continue;
      std::optional<uint32_t> code = l_codec.column->CodeFor(value.AsString());
      if (code.has_value()) token_by_code[*code] = &token;
    }
  }
  const std::vector<uint32_t>& l_codes = l_codec.column->codes();
  const std::vector<uint32_t>& h_codes = h_codec.column->codes();
  const StringDictionary* h_dict =
      h_codec.coded ? &h_codec.column->dictionary() : nullptr;

  std::map<std::string, size_t> train_label_counts;
  const TableView& train = split.train;
  for (size_t r = 0; r < train.num_rows(); ++r) {
    const RowId pos = train.position(r);
    const std::string* token = nullptr;
    if (l_codec.coded) {
      const uint32_t l_code = l_codes[pos];
      if (l_code == kNullCode) continue;
      auto it = token_by_code.find(l_code);
      token = it == token_by_code.end() ? nullptr : it->second;
    } else {
      const Value l_value = train.ValueAt(r, l_col);
      if (l_value.is_null()) continue;
      token = token_for(l_value);
    }
    if (h_codec.coded) {
      const uint32_t h_code = h_codes[pos];
      if (h_code == kNullCode) continue;
      if (token == nullptr) continue;  // value unseen when grouping was formed
      classifier->TrainCoded(*h_dict, h_code, *token);
    } else {
      const Value h_value = train.ValueAt(r, h_col);
      if (h_value.is_null()) continue;
      if (token == nullptr) continue;  // value unseen when grouping was formed
      classifier->Train(h_value, *token);
    }
    ++train_label_counts[*token];
    ++out.train_count;
  }
  if (out.train_count == 0) return out;

  size_t most_common = 0;
  for (const auto& [token, count] : train_label_counts) {
    most_common = std::max(most_common, count);
  }
  out.most_common_fraction = static_cast<double>(most_common) /
                             static_cast<double>(out.train_count);

  const TableView& test = split.test;
  for (size_t r = 0; r < test.num_rows(); ++r) {
    const RowId pos = test.position(r);
    const std::string* actual = nullptr;
    if (l_codec.coded) {
      const uint32_t l_code = l_codes[pos];
      if (l_code == kNullCode) continue;
      auto it = token_by_code.find(l_code);
      actual = it == token_by_code.end() ? nullptr : it->second;
    } else {
      const Value l_value = test.ValueAt(r, l_col);
      if (l_value.is_null()) continue;
      actual = token_for(l_value);
    }
    if (h_codec.coded) {
      const uint32_t h_code = h_codes[pos];
      if (h_code == kNullCode) continue;
      if (actual == nullptr) continue;
      out.eval.Observe(*actual, classifier->ClassifyCoded(*h_dict, h_code));
    } else {
      const Value h_value = test.ValueAt(r, h_col);
      if (h_value.is_null()) continue;
      if (actual == nullptr) continue;
      out.eval.Observe(*actual, classifier->Classify(h_value));
    }
  }
  return out;
}

/// One (label attribute, evidence attribute) cell of the classifier grid.
struct GridCell {
  const std::string* label;
  size_t l_col;
  const std::map<Value, size_t>* counts;
  const std::string* evidence;
  size_t h_col;
  ValueType h_type;
};

/// Trains and evaluates one grid cell: the full LateDisjuncts cycle or the
/// EarlyDisjuncts merge loop for (l, h), emitting every grouping that
/// passes the significance gate in merge order.  Runs on a worker thread;
/// everything it touches besides `rng` is shared read-only state.
std::vector<ViewFamily> RunGridCell(const TableView& source_sample,
                                    const GridCell& cell,
                                    const ClassifierFactory& factory,
                                    const ClusteredViewGenOptions& options,
                                    bool early_disjuncts, Rng& rng) {
  std::vector<ViewFamily> emitted;
  TrainTestViewSplit split =
      SplitTrainTestView(source_sample, options.train_fraction, rng);
  LabelGrouping grouping(*cell.counts);

  // Merge loop: one iteration for LateDisjuncts; repeated error-pair
  // merging under EarlyDisjuncts.
  for (;;) {
    TrainTestOutcome outcome = RunCycle(split, cell.h_col, cell.l_col,
                                        grouping, factory, cell.h_type);
    // The explicit total() == 0 clause keeps the empty-test case (all-NULL
    // columns, single-row samples) out of the significance gate even when a
    // caller sets min_test_size to 0.
    if (outcome.train_count == 0 || outcome.eval.total() == 0 ||
        outcome.eval.total() < options.min_test_size) {
      break;
    }
    SignificanceResult sig =
        ClassifierSignificance(outcome.eval.correct(), outcome.eval.total(),
                               outcome.most_common_fraction);
    if (sig.significance > options.significance_threshold &&
        grouping.num_groups() >= 2) {
      ViewFamily family =
          FamilyFromGrouping(source_sample, *cell.label, grouping);
      family.classifier_f1 = outcome.eval.MicroF(1.0);
      family.significance = sig.significance;
      family.evidence_attribute = *cell.evidence;
      emitted.push_back(std::move(family));
    }
    if (!early_disjuncts) break;
    if (outcome.eval.error_pairs().empty()) break;
    if (grouping.num_groups() <= 2) break;
    const auto ranked = outcome.eval.NormalizedErrorPairs();
    bool merged = false;
    for (const auto& [pair, weight] : ranked) {
      if (grouping.MergeByTokens(pair.first, pair.second)) {
        merged = true;
        break;
      }
    }
    if (!merged) break;
  }
  return emitted;
}

/// Dedup key of a family: its label attribute plus the partition it induces
/// (reconstructed from the emitted views' conditions is unnecessary — the
/// grouping's canonical PartitionKey is rebuilt from the view conditions'
/// value lists).
std::string FamilyPartitionKey(const ViewFamily& family) {
  std::vector<std::string> tokens;
  tokens.reserve(family.views.size());
  for (const View& view : family.views) {
    std::string token;
    for (const Value& member : view.condition().clauses()[0].values) {
      if (!token.empty()) token += '\x1f';
      token += member.ToString();
    }
    tokens.push_back(std::move(token));
  }
  std::sort(tokens.begin(), tokens.end());
  std::string out = family.label_attribute;
  out += '\x1d';
  for (const auto& token : tokens) {
    out += token;
    out += '\x1e';
  }
  return out;
}

}  // namespace

std::vector<ViewFamily> ClusteredViewGen(
    const TableView& source_sample, const ClassifierFactory& factory,
    const ClusteredViewGenOptions& options,
    const CategoricalOptions& categorical, bool early_disjuncts, Rng& rng,
    std::vector<std::string> label_attributes,
    std::vector<std::string> evidence_attributes, exec::ThreadPool* pool,
    const obs::ObsHooks& obs, const CancellationToken* cancel) {
  // Nothing to split into train/test: no cell could pass the significance
  // gate, so skip the grid entirely.
  if (source_sample.num_rows() < 2) return {};
  if (label_attributes.empty()) {
    label_attributes = CategoricalAttributes(source_sample, categorical);
  }
  if (evidence_attributes.empty()) {
    evidence_attributes = NonCategoricalAttributes(source_sample, categorical);
  }

  // Lay out the (l, h) grid up front: one cell per admissible pair, in the
  // same nested order the sequential loop used, so the merge below visits
  // results in the legacy order regardless of which worker ran which cell.
  std::vector<std::map<Value, size_t>> label_counts(label_attributes.size());
  std::vector<GridCell> cells;
  for (size_t li = 0; li < label_attributes.size(); ++li) {
    const std::string& l = label_attributes[li];
    label_counts[li] = source_sample.ValueCounts(l);
    const auto& counts = label_counts[li];
    if (counts.size() < 2 || counts.size() > options.max_label_cardinality) {
      continue;
    }
    const size_t l_col = source_sample.schema().AttributeIndex(l);
    for (const std::string& h : evidence_attributes) {
      if (h == l) continue;
      const size_t h_col = source_sample.schema().AttributeIndex(h);
      cells.push_back(GridCell{&l, l_col, &counts, &h, h_col,
                               source_sample.schema().attribute(h_col).type});
    }
  }

  if (obs.metrics != nullptr && !cells.empty()) {
    obs.metrics->AddCounter("inference.grid_cells", cells.size());
  }

  // One seed drawn from the sequential stream; each cell splits off its own
  // deterministic RNG, so the train/test partitions do not depend on the
  // number of workers (or on which other cells exist being re-ordered).
  const uint64_t grid_seed = rng.Next();
  const TokenKernelStats& kernel_stats = GlobalTokenKernelStats();
  const uint64_t memo_hits_before =
      kernel_stats.nb_memo_hits.load(std::memory_order_relaxed);
  const uint64_t grams_before =
      kernel_stats.grams_interned.load(std::memory_order_relaxed);
  std::vector<std::vector<ViewFamily>> cell_results = exec::ParallelMap(
      pool, cells.size(),
      [&](size_t i) {
        // Fault site "inference.cell" (index = grid cell index).  A kFail
        // arm drops just this cell's families; kCancel arms cancel the
        // caller-owned token, which the surrounding ParallelMap drains on.
        if (FaultInjector::Hit("inference.cell", i)) {
          return std::vector<ViewFamily>{};
        }
        std::string span_name;
        if (obs.tracer != nullptr) {
          span_name = "cell:" + *cells[i].label + "/" + *cells[i].evidence;
        }
        // Prefer the thread's current span (the pool-task span on workers,
        // the caller's span inline); the explicit hook parent is the
        // fallback when this runs on a pool with no tracer attached.
        uint64_t parent = obs::Tracer::CurrentSpan();
        if (parent == 0) parent = obs.parent_span;
        obs::ScopedSpan span(obs.tracer, span_name, parent);
        const auto cell_start = std::chrono::steady_clock::now();
        Rng cell_rng = exec::TaskRng(grid_seed, i);
        std::vector<ViewFamily> families = RunGridCell(
            source_sample, cells[i], factory, options, early_disjuncts,
            cell_rng);
        if (obs.metrics != nullptr) {
          obs.metrics->Observe(
              "inference.cell_seconds",
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            cell_start)
                  .count());
        }
        return families;
      },
      cancel);

  if (obs.metrics != nullptr) {
    const uint64_t memo_hits =
        kernel_stats.nb_memo_hits.load(std::memory_order_relaxed) -
        memo_hits_before;
    const uint64_t grams =
        kernel_stats.grams_interned.load(std::memory_order_relaxed) -
        grams_before;
    if (memo_hits > 0) obs.metrics->AddCounter("ml.nb_memo_hits", memo_hits);
    if (grams > 0) obs.metrics->AddCounter("text.grams_interned", grams);
  }

  // Merge in grid order: best accepted family per (label, partition).
  std::map<std::string, ViewFamily> accepted;
  for (std::vector<ViewFamily>& families : cell_results) {
    for (ViewFamily& family : families) {
      std::string key = FamilyPartitionKey(family);
      auto it = accepted.find(key);
      if (it == accepted.end() ||
          it->second.significance < family.significance) {
        accepted[key] = std::move(family);
      }
    }
  }

  std::vector<ViewFamily> out;
  out.reserve(accepted.size());
  for (auto& [key, family] : accepted) out.push_back(std::move(family));
  // Most significant families first; stable tiebreak on base/label.
  std::sort(out.begin(), out.end(), [](const ViewFamily& a,
                                       const ViewFamily& b) {
    if (a.significance != b.significance) {
      return a.significance > b.significance;
    }
    if (a.label_attribute != b.label_attribute) {
      return a.label_attribute < b.label_attribute;
    }
    return a.views.size() < b.views.size();
  });
  return out;
}

}  // namespace csm
