#include "core/src_class_infer.h"

#include <algorithm>

#include "core/clustered_view_gen.h"
#include "ml/gaussian_classifier.h"
#include "ml/naive_bayes.h"
#include "relational/categorical.h"

namespace csm {

std::vector<CandidateView> CandidatesFromFamilies(
    const std::vector<ViewFamily>& families) {
  std::vector<CandidateView> out;
  for (const ViewFamily& family : families) {
    for (const View& view : family.views) {
      CandidateView candidate;
      candidate.view = view;
      candidate.family_f1 = family.classifier_f1;
      candidate.family_significance = family.significance;
      candidate.evidence_attribute = family.evidence_attribute;
      out.push_back(std::move(candidate));
    }
  }
  return DeduplicateCandidates(std::move(out));
}

std::vector<std::string> FilteredLabelAttributes(
    const InferenceInput& input, const CategoricalOptions& categorical) {
  std::vector<std::string> labels =
      CategoricalAttributes(input.source_sample, categorical);
  const auto& excluded = input.excluded_partition_attributes;
  std::erase_if(labels, [&](const std::string& name) {
    return std::find(excluded.begin(), excluded.end(), name) != excluded.end();
  });
  return labels;
}

std::vector<CandidateView> SrcClassInfer::InferCandidateViews(
    const InferenceInput& input, Rng& rng) {
  if (input.matches == nullptr || input.matches->empty()) return {};
  if (!input.source_sample.valid() || input.source_sample.num_rows() == 0) {
    return {};
  }
  std::vector<std::string> labels = FilteredLabelAttributes(input, categorical_);
  if (labels.empty()) return {};
  ClassifierFactory factory =
      [](ValueType evidence_type) -> std::unique_ptr<ValueClassifier> {
    if (evidence_type == ValueType::kInt || evidence_type == ValueType::kReal) {
      return std::make_unique<GaussianClassifier>();
    }
    return std::make_unique<NaiveBayesClassifier>(/*q=*/3);
  };
  std::vector<ViewFamily> families = ClusteredViewGen(
      input.source_sample, factory, clustered_, categorical_,
      input.early_disjuncts, rng, std::move(labels), {}, input.pool,
      input.obs, input.cancel);
  return CandidatesFromFamilies(families);
}

}  // namespace csm
