// The concrete matcher suite: schema-level name matching plus the
// instance-based q-gram, TF-IDF word-token, and numeric-distribution
// matchers.  Together these form the "variety of matchers" the standard
// matching system of Section 2.3 combines.

#ifndef CSM_MATCH_MATCHERS_H_
#define CSM_MATCH_MATCHERS_H_

#include <memory>
#include <string>
#include <vector>

#include "match/matcher.h"
#include "text/tfidf.h"

namespace csm {

/// Attribute-name similarity: the max of Jaro-Winkler on the normalized
/// names and Dice overlap of their camelCase/underscore-split tokens.
/// A schema-level signal, weighted below the instance-based matchers.
class NameMatcher : public AttributeMatcher {
 public:
  explicit NameMatcher(double weight = 0.5) : weight_(weight) {}

  std::string Name() const override { return "name"; }
  double Weight() const override { return weight_; }
  double Score(const AttributeSample& source,
               const AttributeSample& target) const override;

  /// Splits an attribute name into lowercase tokens on underscores, dashes,
  /// spaces, digit boundaries and camelCase humps ("ItemType" -> item,type).
  static std::vector<std::string> NameTokens(std::string_view name);

 private:
  double weight_;
};

/// Cosine similarity of padded 3-gram profiles of the two value bags.  The
/// workhorse instance matcher for string data.
class QGramMatcher : public AttributeMatcher {
 public:
  explicit QGramMatcher(double weight = 1.0) : weight_(weight) {}

  std::string Name() const override { return "qgram"; }
  double Weight() const override { return weight_; }
  bool Applicable(const AttributeSample& source,
                  const AttributeSample& target) const override;
  double Score(const AttributeSample& source,
               const AttributeSample& target) const override;

 private:
  double weight_;
};

/// TF-IDF-weighted cosine over word tokens.  Prepare() builds the IDF
/// corpus from the target attributes, so tokens common to every target
/// column (stopwords, boilerplate) are discounted.
class TfIdfTokenMatcher : public AttributeMatcher {
 public:
  explicit TfIdfTokenMatcher(double weight = 1.0) : weight_(weight) {}

  std::string Name() const override { return "tfidf"; }
  double Weight() const override { return weight_; }
  void Prepare(const std::vector<const AttributeSample*>& targets) override;
  bool Applicable(const AttributeSample& source,
                  const AttributeSample& target) const override;
  double Score(const AttributeSample& source,
               const AttributeSample& target) const override;

 private:
  double weight_;
  TfIdfCorpus corpus_;
};

/// Distribution similarity for numeric bags: the product of (a) overlap of
/// the [mean ± 2 stddev] intervals and (b) a Gaussian penalty on the
/// standardized mean difference.  Applicable only when both bags are
/// mostly numeric.
class NumericMatcher : public AttributeMatcher {
 public:
  explicit NumericMatcher(double weight = 1.0) : weight_(weight) {}

  std::string Name() const override { return "numeric"; }
  double Weight() const override { return weight_; }
  bool Applicable(const AttributeSample& source,
                  const AttributeSample& target) const override;
  double Score(const AttributeSample& source,
               const AttributeSample& target) const override;

 private:
  double weight_;
};

/// Exact-value overlap: the fraction of the source's distinct non-null
/// values that also occur in the target's bag.  Strong signal for key-like
/// and code-like columns whose instances actually intersect; useless for
/// independently sampled text, which is why it is NOT in the default suite
/// (the paper's experiments draw source and target instances independently).
class ValueOverlapMatcher : public AttributeMatcher {
 public:
  explicit ValueOverlapMatcher(double weight = 1.0) : weight_(weight) {}

  std::string Name() const override { return "overlap"; }
  double Weight() const override { return weight_; }
  bool Applicable(const AttributeSample& source,
                  const AttributeSample& target) const override;
  double Score(const AttributeSample& source,
               const AttributeSample& target) const override;

 private:
  double weight_;
};

/// The default matcher suite: name (weight 0.5), q-gram, TF-IDF, numeric.
std::vector<std::unique_ptr<AttributeMatcher>> DefaultMatcherSuite();

}  // namespace csm

#endif  // CSM_MATCH_MATCHERS_H_
