// Match records exchanged between the standard matcher, the contextual
// matcher and the mapping generator.

#ifndef CSM_MATCH_MATCH_TYPES_H_
#define CSM_MATCH_MATCH_TYPES_H_

#include <string>
#include <vector>

#include "relational/condition.h"
#include "relational/schema.h"

namespace csm {

/// A match (Rs.s, Rt.t, c) per Section 2.1: the pairing of source attribute
/// s and target attribute t makes sense when condition c holds on the
/// source table.  c == true and a base-table source make it a standard
/// match; otherwise it is a contextual match.
struct Match {
  AttributeRef source;
  AttributeRef target;
  Condition condition;
  /// When set, `condition` selects rows of the *target* table instead of
  /// the source table (target-side contextual matching, Section 7).
  bool condition_on_target = false;

  /// Combined raw matcher score s_i (average of matcher scores).
  double score = 0.0;
  /// Combined confidence f_i in [0, 1] (Section 2.3 normalization).
  double confidence = 0.0;

  bool is_standard() const { return condition.is_true(); }

  /// "inv.name -> book.title [type = 1] (conf 0.93)".
  std::string ToString() const;
};

/// The list L of accepted matches.
using MatchList = std::vector<Match>;

/// True when two matches pair the same attributes under the same condition
/// (scores ignored).
bool SameCorrespondence(const Match& a, const Match& b);

}  // namespace csm

#endif  // CSM_MATCH_MATCH_TYPES_H_
