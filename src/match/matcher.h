// The base matcher framework of Section 2.3: a standard instance-based
// schema matching system employs a variety of "matchers" that each compute
// a raw similarity score for a (source attribute, target attribute) pair.

#ifndef CSM_MATCH_MATCHER_H_
#define CSM_MATCH_MATCHER_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "relational/schema.h"
#include "relational/table.h"
#include "stats/descriptive.h"
#include "text/gram.h"

namespace csm {

/// The evidence a matcher sees for one attribute: its identity, type and
/// value bag v(R, a).  Token profiles and numeric statistics are built
/// lazily and cached, so a sample kept alive across many Score() calls
/// (e.g., a target attribute compared against many candidate views) pays
/// the tokenization cost once.
///
/// Two storage modes: FromTable keeps the attribute's Column segment
/// (sharing the string dictionary, no boxing), and the profile builders
/// tokenize each *distinct* rendered value once, scaled by its
/// multiplicity — bit-identical to per-row tokenization because the counts
/// are exact integers.  The explicit-bag constructor (restricted candidate
/// bags, tests) keeps boxed Values; values() boxes lazily in column mode.
///
/// Thread safety: the lazy caches are built under std::call_once, so a
/// sample shared across ParallelFor workers (a TableMatchSession's target
/// samples during parallel candidate-view scoring) may be read from any
/// number of threads concurrently.  Copies share the cache block — the
/// values are identical, so the derived profiles are too.
class AttributeSample {
 public:
  AttributeSample() = default;
  AttributeSample(AttributeRef ref, ValueType type, std::vector<Value> values)
      : ref_(std::move(ref)),
        type_(type),
        values_(std::move(values)),
        size_(values_.size()) {}

  /// Builds a sample for one attribute of `instance`, keeping the column
  /// segment (dictionary shared, no per-row boxing).
  static AttributeSample FromTable(const Table& instance,
                                   std::string_view attribute);

  const AttributeRef& ref() const { return ref_; }
  ValueType declared_type() const { return type_; }

  /// The boxed value bag; in column mode it is materialized lazily on
  /// first use (the profile paths never need it).
  const std::vector<Value>& values() const;
  size_t size() const { return size_; }

  /// Number of non-null values (cached).
  size_t NonNullCount() const;

  /// Cached padded 3-gram profile over all non-null values.
  const GramProfile& QGramProfile() const;

  /// Cached word-token profile over all non-null values.
  const csm::WordProfile& WordProfile() const;

  /// Cached numeric stats over the numeric values; empty accumulator when
  /// the attribute has no numeric values.
  const DescriptiveStats& NumericStats() const;

  /// True if at least `fraction` of the non-null values are numeric.
  bool MostlyNumeric(double fraction = 0.5) const;

 private:
  /// Lazily built caches guarded by once-flags (which are neither copyable
  /// nor movable, hence the shared heap block).
  struct Caches {
    std::once_flag values_once;
    std::once_flag non_null_once;
    std::once_flag distinct_once;
    std::once_flag qgram_once;
    std::once_flag word_once;
    std::once_flag numeric_once;
    std::optional<std::vector<Value>> boxed_values;
    size_t non_null_count = 0;
    /// Distinct rendered (ToString) non-null values with multiplicities.
    std::optional<std::vector<std::pair<std::string, double>>> distinct;
    std::optional<GramProfile> qgram_profile;
    std::optional<csm::WordProfile> word_profile;
    std::optional<DescriptiveStats> numeric_stats;
  };

  /// Distinct rendered values with multiplicities — the shared input of
  /// both token profile builders.
  const std::vector<std::pair<std::string, double>>& DistinctRenders() const;

  AttributeRef ref_;
  ValueType type_ = ValueType::kString;
  /// Column mode: the attribute's segment (dictionary shared with the
  /// source table, copy-on-write).  Bag mode: values_ holds the bag.
  std::optional<Column> column_;
  std::vector<Value> values_;
  size_t size_ = 0;
  std::shared_ptr<Caches> caches_ = std::make_shared<Caches>();
};

/// One matching heuristic.  Implementations must be stateless with respect
/// to individual Score() calls (Prepare() may set up corpus-level state).
class AttributeMatcher {
 public:
  virtual ~AttributeMatcher() = default;

  /// Short identifier ("qgram", "name", ...).
  virtual std::string Name() const = 0;

  /// Relative weight in the combined confidence (default 1).
  virtual double Weight() const { return 1.0; }

  /// Whether this matcher can meaningfully score the pair (e.g., the
  /// numeric matcher requires numeric bags on both sides).
  virtual bool Applicable(const AttributeSample& source,
                          const AttributeSample& target) const {
    (void)source;
    (void)target;
    return true;
  }

  /// Corpus-level preparation before a batch of Score() calls; the default
  /// does nothing.  `targets` are all target attribute samples in play.
  virtual void Prepare(const std::vector<const AttributeSample*>& targets) {
    (void)targets;
  }

  /// Raw similarity in [0, 1].
  virtual double Score(const AttributeSample& source,
                       const AttributeSample& target) const = 0;
};

}  // namespace csm

#endif  // CSM_MATCH_MATCHER_H_
