// TableMatchSession: one standard-match run of a source table against a
// target database, retaining the per-matcher score distributions so that
// restricted (view) value bags can be re-scored consistently — exactly the
// contract ContextMatch's ScoreMatch step needs (Section 3.1).
//
// Score -> confidence normalization (Section 2.3): "for a single matcher m
// and source attribute a, the distribution of scores to all target
// attributes are treated as samples of a normal distribution, allowing the
// raw scores given by m for a to be converted into confidence scores"; the
// per-matcher confidences are then combined by weight.

#ifndef CSM_MATCH_SESSION_H_
#define CSM_MATCH_SESSION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "match/match_types.h"
#include "match/matcher.h"
#include "relational/table.h"
#include "stats/descriptive.h"

namespace csm {

/// Tuning knobs for a match session.
struct MatchOptions {
  /// Floor on the per-(matcher, source attribute) score stddev, so a nearly
  /// constant score row does not produce saturated z-scores.
  double min_score_stddev = 0.05;
  /// Attributes whose bags have fewer non-null values than this never
  /// produce matches (too little evidence).
  size_t min_non_null_values = 1;
  /// Blend the relative confidence Phi(z) with the absolute raw score as
  /// sqrt(Phi(z) * raw).  Pure z-normalization makes every source
  /// attribute's best target look confident even when the raw evidence is
  /// weak (an attribute of random codes still has *some* best target); the
  /// blend keeps weak-evidence pairs below threshold.  Disable to ablate.
  bool blend_raw_score = true;
  /// Upper bound on the rows used to build each table's attribute samples
  /// (the classifier-training value bags).  0 = every row.  When a table
  /// exceeds the cap its bags come from a deterministic uniform row sample
  /// (ReservoirSampleRows seeded by DeriveTableSampleSeed(
  /// training_sample_seed, table name)), so session construction cost is
  /// bounded by the cap, not by table size — the paper's matchers train on
  /// *samples* of instance data, and this knob is what keeps that true at
  /// 10^6+ rows.  The restore path rebuilds the identical sample, so cold-
  /// tier round trips stay bit-exact.
  size_t max_training_rows = 0;
  /// Seed for the per-table training-sample draws; folded with each table
  /// name so every table samples an independent reproducible stream.
  uint64_t training_sample_seed = 0x5eed0f5a4d704e65ULL;
};

/// Combined (score, confidence) for one attribute pair.
struct MatchScore {
  double score = 0.0;
  double confidence = 0.0;
  /// Number of matchers that were applicable.
  size_t matchers_used = 0;
};

class TableMatchSession {
 public:
  /// The raw score matrix of a previously built session, parsed back from
  /// its serialized form: raw[m][s][t] is matcher m's score of source
  /// attribute s against target attribute t, NaN where inapplicable.  See
  /// AppendSerializedScores / the restore constructor below.
  struct RestoredScores {
    std::vector<std::vector<std::vector<double>>> raw;
  };

  /// Runs the matcher suite for `source` against every table of `target`.
  /// The session keeps references into neither table; it copies the value
  /// bags it needs.  `matchers` is owned by the session.
  TableMatchSession(const Table& source, const Database& target,
                    std::vector<std::unique_ptr<AttributeMatcher>> matchers,
                    MatchOptions options = {});

  /// Restore path for the engine's cold session tier: builds the attribute
  /// samples from the tables exactly like the scoring constructor, but
  /// installs `scores.raw` instead of running the matcher scoring loop and
  /// replays the per-(matcher, source attribute) score distributions from
  /// it in the same order the scoring loop recorded them — so a restored
  /// session is bit-identical to the one that produced the scores, given
  /// content-equal tables, the same matcher suite and the same options.
  /// CHECK-fails when the score dimensions do not fit (callers validate via
  /// the parse step first).
  TableMatchSession(const Table& source, const Database& target,
                    std::vector<std::unique_ptr<AttributeMatcher>> matchers,
                    const MatchOptions& options, RestoredScores scores);

  /// Appends the raw score matrix to `out` as deterministic text: a header
  /// line "scores <matchers> <sources> <targets>" followed by one line per
  /// (matcher, source) with hexfloat scores ("nan" where inapplicable).
  /// Hexfloat round-trips doubles exactly, so serialize -> parse -> restore
  /// reproduces the session bit-for-bit.  The samples and distributions are
  /// deliberately NOT serialized: samples are rebuilt from the request's
  /// tables (content-equal by fingerprint) and distributions replay from
  /// the scores, which keeps the cold-tier blob proportional to the score
  /// grid rather than the data.
  void AppendSerializedScores(std::string* out) const;

  /// Parses what AppendSerializedScores wrote, consuming the header and
  /// score lines from `pos` (advanced past them).  Dimension/format errors
  /// return non-OK and leave the blob unusable (callers fall back to a
  /// fresh build).
  static StatusOr<RestoredScores> ParseSerializedScores(
      const std::string& blob, size_t* pos);

  /// The standard matches with confidence >= tau, best-confidence first.
  MatchList AcceptedMatches(double tau) const;

  /// The combined score/confidence of (source attribute, target attribute);
  /// zero MatchScore when never scored (inapplicable everywhere).
  MatchScore PairScore(std::string_view source_attribute,
                       const AttributeRef& target) const;

  /// Re-scores a restricted source bag (a candidate view's values of
  /// `source_attribute`) against `target`, converting raw scores with the
  /// distributions recorded during construction, per the strawman
  /// discussion in Section 3.  This is ContextMatch's ScoreMatch.
  MatchScore ScoreRestricted(std::string_view source_attribute,
                             const std::vector<Value>& restricted_bag,
                             const AttributeRef& target) const;

  /// Builds a reusable restricted sample for `source_attribute`.  When one
  /// bag is scored against many targets, build the sample once (its token
  /// profiles are cached inside) and call ScoreRestrictedSample per target.
  AttributeSample MakeRestrictedSample(std::string_view source_attribute,
                                       std::vector<Value> restricted_bag) const;

  /// Scores a sample created by MakeRestrictedSample against `target`.
  MatchScore ScoreRestrictedSample(const AttributeSample& sample,
                                   const AttributeRef& target) const;

  /// All target attribute refs the session scored against.
  const std::vector<AttributeRef>& target_refs() const { return target_refs_; }

  /// Source attribute names in schema order.
  std::vector<std::string> source_attributes() const;

  const std::string& source_table() const { return source_table_; }

 private:
  struct DistributionKey {
    size_t matcher_index;
    size_t source_index;
    friend bool operator<(const DistributionKey& a, const DistributionKey& b) {
      if (a.matcher_index != b.matcher_index) {
        return a.matcher_index < b.matcher_index;
      }
      return a.source_index < b.source_index;
    }
  };

  /// Shared constructor prologue: attribute samples for every source and
  /// target attribute, then matcher Prepare over the target samples.
  void BuildSamples(const Table& source, const Database& target);

  /// Rebuilds distributions_ from raw_scores_ by adding the non-NaN scores
  /// of each (matcher, source) row in target order — the exact sequence of
  /// DescriptiveStats::Add calls the scoring loop performs, so the replayed
  /// accumulators are bit-identical to the originals.
  void ReplayDistributions();

  /// Converts a raw score into a confidence using the stored distribution
  /// for (matcher, source attribute).
  double Confidence(size_t matcher_index, size_t source_index,
                    double raw_score) const;

  MatchScore CombineForBag(const AttributeSample& source_sample,
                           size_t source_index, size_t target_index) const;

  size_t SourceIndex(std::string_view attribute) const;
  size_t TargetIndex(const AttributeRef& target) const;

  std::string source_table_;
  MatchOptions options_;
  std::vector<std::unique_ptr<AttributeMatcher>> matchers_;
  std::vector<AttributeSample> source_samples_;
  std::vector<AttributeSample> target_samples_;
  std::vector<AttributeRef> target_refs_;

  /// raw_scores_[m][s][t]: score of matcher m for source attr s vs target
  /// attr t; NaN when inapplicable.
  std::vector<std::vector<std::vector<double>>> raw_scores_;
  /// Normal model of each (matcher, source attr) score row.
  std::map<DistributionKey, DescriptiveStats> distributions_;
};

/// Convenience: run a default-suite session and return matches >= tau.
MatchList StandardMatch(const Table& source, const Database& target,
                        double tau, MatchOptions options = {});

}  // namespace csm

#endif  // CSM_MATCH_SESSION_H_
