#include "match/matcher.h"

#include "text/tokenizer.h"

namespace csm {

AttributeSample AttributeSample::FromTable(const Table& instance,
                                           std::string_view attribute) {
  size_t col = instance.schema().AttributeIndex(attribute);
  return AttributeSample(
      AttributeRef{instance.name(), std::string(attribute)},
      instance.schema().attribute(col).type, instance.ValueBag(col));
}

size_t AttributeSample::NonNullCount() const {
  size_t n = 0;
  for (const Value& v : values_) {
    if (!v.is_null()) ++n;
  }
  return n;
}

const TokenProfile& AttributeSample::QGramProfile() const {
  std::call_once(caches_->qgram_once, [this] {
    TokenProfile profile;
    for (const Value& v : values_) {
      if (v.is_null()) continue;
      profile.AddAll(QGrams(v.ToString(), 3));
    }
    caches_->qgram_profile = std::move(profile);
  });
  return *caches_->qgram_profile;
}

const TokenProfile& AttributeSample::WordProfile() const {
  std::call_once(caches_->word_once, [this] {
    TokenProfile profile;
    for (const Value& v : values_) {
      if (v.is_null()) continue;
      profile.AddAll(WordTokens(v.ToString()));
    }
    caches_->word_profile = std::move(profile);
  });
  return *caches_->word_profile;
}

const DescriptiveStats& AttributeSample::NumericStats() const {
  std::call_once(caches_->numeric_once, [this] {
    DescriptiveStats stats;
    for (const Value& v : values_) {
      if (v.IsNumeric()) stats.Add(v.AsNumeric());
    }
    caches_->numeric_stats = stats;
  });
  return *caches_->numeric_stats;
}

bool AttributeSample::MostlyNumeric(double fraction) const {
  size_t non_null = NonNullCount();
  if (non_null == 0) return false;
  return static_cast<double>(NumericStats().count()) >=
         fraction * static_cast<double>(non_null);
}

}  // namespace csm
