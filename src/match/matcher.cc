#include "match/matcher.h"

#include "text/tokenizer.h"

namespace csm {

AttributeSample AttributeSample::FromTable(const Table& instance,
                                           std::string_view attribute) {
  size_t col = instance.schema().AttributeIndex(attribute);
  return AttributeSample(
      AttributeRef{instance.name(), std::string(attribute)},
      instance.schema().attribute(col).type, instance.ValueBag(col));
}

size_t AttributeSample::NonNullCount() const {
  size_t n = 0;
  for (const Value& v : values_) {
    if (!v.is_null()) ++n;
  }
  return n;
}

const TokenProfile& AttributeSample::QGramProfile() const {
  if (!qgram_profile_) {
    TokenProfile profile;
    for (const Value& v : values_) {
      if (v.is_null()) continue;
      profile.AddAll(QGrams(v.ToString(), 3));
    }
    qgram_profile_ = std::move(profile);
  }
  return *qgram_profile_;
}

const TokenProfile& AttributeSample::WordProfile() const {
  if (!word_profile_) {
    TokenProfile profile;
    for (const Value& v : values_) {
      if (v.is_null()) continue;
      profile.AddAll(WordTokens(v.ToString()));
    }
    word_profile_ = std::move(profile);
  }
  return *word_profile_;
}

const DescriptiveStats& AttributeSample::NumericStats() const {
  if (!numeric_stats_) {
    DescriptiveStats stats;
    for (const Value& v : values_) {
      if (v.IsNumeric()) stats.Add(v.AsNumeric());
    }
    numeric_stats_ = stats;
  }
  return *numeric_stats_;
}

bool AttributeSample::MostlyNumeric(double fraction) const {
  size_t non_null = NonNullCount();
  if (non_null == 0) return false;
  return static_cast<double>(NumericStats().count()) >=
         fraction * static_cast<double>(non_null);
}

}  // namespace csm
