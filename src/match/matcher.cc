#include "match/matcher.h"

#include <cstring>
#include <unordered_map>

#include "text/tokenizer.h"

namespace csm {

AttributeSample AttributeSample::FromTable(const Table& instance,
                                           std::string_view attribute) {
  size_t col = instance.schema().AttributeIndex(attribute);
  AttributeSample sample;
  sample.ref_ = AttributeRef{instance.name(), std::string(attribute)};
  sample.type_ = instance.schema().attribute(col).type;
  sample.column_ = instance.column(col);
  sample.size_ = sample.column_->size();
  return sample;
}

const std::vector<Value>& AttributeSample::values() const {
  if (!column_.has_value()) return values_;
  std::call_once(caches_->values_once, [this] {
    std::vector<Value> boxed;
    boxed.reserve(column_->size());
    for (size_t r = 0; r < column_->size(); ++r) {
      boxed.push_back(column_->GetValue(r));
    }
    caches_->boxed_values = std::move(boxed);
  });
  return *caches_->boxed_values;
}

size_t AttributeSample::NonNullCount() const {
  std::call_once(caches_->non_null_once, [this] {
    size_t n = 0;
    if (column_.has_value()) {
      switch (column_->type()) {
        case ValueType::kNull:
          break;
        case ValueType::kInt:
        case ValueType::kReal:
          for (uint8_t is_null : column_->null_mask()) {
            if (is_null == 0) ++n;
          }
          break;
        case ValueType::kString:
          for (uint32_t code : column_->codes()) {
            if (code != kNullCode) ++n;
          }
          break;
      }
    } else {
      for (const Value& v : values_) {
        if (!v.is_null()) ++n;
      }
    }
    caches_->non_null_count = n;
  });
  return caches_->non_null_count;
}

const std::vector<std::pair<std::string, double>>&
AttributeSample::DistinctRenders() const {
  std::call_once(caches_->distinct_once, [this] {
    std::vector<std::pair<std::string, double>> out;
    if (column_.has_value()) {
      switch (column_->type()) {
        case ValueType::kNull:
          break;
        case ValueType::kInt: {
          const std::vector<int64_t>& ints = column_->ints();
          const std::vector<uint8_t>& nulls = column_->null_mask();
          std::unordered_map<int64_t, size_t> index;
          for (size_t r = 0; r < column_->size(); ++r) {
            if (nulls[r]) continue;
            auto [it, inserted] = index.try_emplace(ints[r], out.size());
            if (inserted) {
              out.emplace_back(Value::Int(ints[r]).ToString(), 1.0);
            } else {
              out[it->second].second += 1.0;
            }
          }
          break;
        }
        case ValueType::kReal: {
          // Group by bit pattern: identical bits render identically, and
          // every distinct NaN/zero encoding just forms its own group.
          const std::vector<double>& reals = column_->reals();
          const std::vector<uint8_t>& nulls = column_->null_mask();
          std::unordered_map<uint64_t, size_t> index;
          for (size_t r = 0; r < column_->size(); ++r) {
            if (nulls[r]) continue;
            uint64_t bits;
            std::memcpy(&bits, &reals[r], sizeof(bits));
            auto [it, inserted] = index.try_emplace(bits, out.size());
            if (inserted) {
              out.emplace_back(Value::Real(reals[r]).ToString(), 1.0);
            } else {
              out[it->second].second += 1.0;
            }
          }
          break;
        }
        case ValueType::kString: {
          const StringDictionary& dict = column_->dictionary();
          for (const auto& [code, count] : column_->CodeCounts()) {
            out.emplace_back(dict.value(code), static_cast<double>(count));
          }
          break;
        }
      }
    } else {
      std::unordered_map<std::string, size_t> index;
      for (const Value& v : values_) {
        if (v.is_null()) continue;
        std::string render = v.ToString();
        auto [it, inserted] = index.try_emplace(std::move(render), out.size());
        if (inserted) {
          out.emplace_back(it->first, 1.0);
        } else {
          out[it->second].second += 1.0;
        }
      }
    }
    caches_->distinct = std::move(out);
  });
  return *caches_->distinct;
}

const GramProfile& AttributeSample::QGramProfile() const {
  std::call_once(caches_->qgram_once, [this] {
    GramProfileBuilder builder;
    for (const auto& [text, count] : DistinctRenders()) {
      builder.AddText(text, 3, count);
    }
    caches_->qgram_profile = builder.Build();
  });
  return *caches_->qgram_profile;
}

const csm::WordProfile& AttributeSample::WordProfile() const {
  std::call_once(caches_->word_once, [this] {
    WordProfileBuilder builder;
    for (const auto& [text, count] : DistinctRenders()) {
      builder.AddText(text, count);
    }
    caches_->word_profile = builder.Build();
  });
  return *caches_->word_profile;
}

const DescriptiveStats& AttributeSample::NumericStats() const {
  std::call_once(caches_->numeric_once, [this] {
    DescriptiveStats stats;
    if (column_.has_value()) {
      // Typed row-order accumulation — the same Add sequence the boxed
      // loop produced (DescriptiveStats is order-sensitive).
      switch (column_->type()) {
        case ValueType::kNull:
        case ValueType::kString:
          break;  // no numeric values
        case ValueType::kInt: {
          const std::vector<int64_t>& ints = column_->ints();
          const std::vector<uint8_t>& nulls = column_->null_mask();
          for (size_t r = 0; r < column_->size(); ++r) {
            if (!nulls[r]) stats.Add(static_cast<double>(ints[r]));
          }
          break;
        }
        case ValueType::kReal: {
          const std::vector<double>& reals = column_->reals();
          const std::vector<uint8_t>& nulls = column_->null_mask();
          for (size_t r = 0; r < column_->size(); ++r) {
            if (!nulls[r]) stats.Add(reals[r]);
          }
          break;
        }
      }
    } else {
      for (const Value& v : values_) {
        if (v.IsNumeric()) stats.Add(v.AsNumeric());
      }
    }
    caches_->numeric_stats = stats;
  });
  return *caches_->numeric_stats;
}

bool AttributeSample::MostlyNumeric(double fraction) const {
  size_t non_null = NonNullCount();
  if (non_null == 0) return false;
  return static_cast<double>(NumericStats().count()) >=
         fraction * static_cast<double>(non_null);
}

}  // namespace csm
