#include "match/matchers.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>

#include "common/string_util.h"
#include "text/string_distance.h"
#include "text/tokenizer.h"

namespace csm {

std::vector<std::string> NameMatcher::NameTokens(std::string_view name) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  char prev = '\0';
  for (char c : name) {
    const bool is_alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    const bool is_digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (!is_alpha && !is_digit) {
      flush();
      prev = c;
      continue;
    }
    // CamelCase hump: upper after lower starts a new token; so does an
    // alpha/digit boundary.
    const bool hump = std::isupper(static_cast<unsigned char>(c)) &&
                      std::islower(static_cast<unsigned char>(prev));
    const bool kind_change =
        (is_digit && std::isalpha(static_cast<unsigned char>(prev))) ||
        (is_alpha && std::isdigit(static_cast<unsigned char>(prev)));
    if (hump || kind_change) flush();
    current += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    prev = c;
  }
  flush();
  return tokens;
}

double NameMatcher::Score(const AttributeSample& source,
                          const AttributeSample& target) const {
  const std::string a = ToLower(source.ref().attribute);
  const std::string b = ToLower(target.ref().attribute);
  double edit_sim = JaroWinklerSimilarity(a, b);

  WordProfileBuilder pa, pb;
  for (const std::string& token : NameTokens(source.ref().attribute)) {
    pa.Add(token);
  }
  for (const std::string& token : NameTokens(target.ref().attribute)) {
    pb.Add(token);
  }
  double token_sim = DiceSimilarity(pa.Build(), pb.Build());
  return std::max(edit_sim, token_sim);
}

bool QGramMatcher::Applicable(const AttributeSample& source,
                              const AttributeSample& target) const {
  return source.NonNullCount() > 0 && target.NonNullCount() > 0;
}

double QGramMatcher::Score(const AttributeSample& source,
                           const AttributeSample& target) const {
  return CosineSimilarity(source.QGramProfile(), target.QGramProfile());
}

void TfIdfTokenMatcher::Prepare(
    const std::vector<const AttributeSample*>& targets) {
  corpus_ = TfIdfCorpus();
  for (const AttributeSample* sample : targets) {
    corpus_.AddDocument(sample->WordProfile());
  }
}

bool TfIdfTokenMatcher::Applicable(const AttributeSample& source,
                                   const AttributeSample& target) const {
  return !source.WordProfile().empty() && !target.WordProfile().empty();
}

double TfIdfTokenMatcher::Score(const AttributeSample& source,
                                const AttributeSample& target) const {
  return corpus_.WeightedCosine(source.WordProfile(), target.WordProfile());
}

bool NumericMatcher::Applicable(const AttributeSample& source,
                                const AttributeSample& target) const {
  return source.MostlyNumeric() && target.MostlyNumeric();
}

double NumericMatcher::Score(const AttributeSample& source,
                             const AttributeSample& target) const {
  const DescriptiveStats& a = source.NumericStats();
  const DescriptiveStats& b = target.NumericStats();
  if (a.empty() || b.empty()) return 0.0;

  constexpr double kEpsilon = 1e-9;
  const double sa = a.PopulationStdDev();
  const double sb = b.PopulationStdDev();

  // (a) Overlap of the mean +/- 2 stddev intervals (Jaccard on intervals).
  const double lo_a = a.Mean() - 2.0 * sa, hi_a = a.Mean() + 2.0 * sa;
  const double lo_b = b.Mean() - 2.0 * sb, hi_b = b.Mean() + 2.0 * sb;
  const double inter =
      std::max(0.0, std::min(hi_a, hi_b) - std::max(lo_a, lo_b));
  const double uni = std::max(hi_a, hi_b) - std::min(lo_a, lo_b);
  double interval_overlap;
  if (uni < kEpsilon) {
    // Both essentially point distributions: overlap iff equal means.
    interval_overlap = std::abs(a.Mean() - b.Mean()) < kEpsilon ? 1.0 : 0.0;
  } else {
    interval_overlap = inter / uni;
  }

  // (b) Gaussian penalty on the standardized mean difference.
  const double pooled = std::sqrt(0.5 * (sa * sa + sb * sb)) + kEpsilon;
  const double dz = (a.Mean() - b.Mean()) / pooled;
  const double mean_closeness = std::exp(-0.5 * dz * dz);

  // (c) Spread similarity: a wide mixture centered on a narrow column is
  // not the same distribution even though the means agree.  Applied as a
  // multiplicative discount so far-apart distributions still score ~0.
  const double spread_sim = (std::min(sa, sb) + kEpsilon) /
                            (std::max(sa, sb) + kEpsilon);

  const double location = 0.5 * interval_overlap + 0.5 * mean_closeness;
  return std::clamp(location * (0.7 + 0.3 * spread_sim), 0.0, 1.0);
}

bool ValueOverlapMatcher::Applicable(const AttributeSample& source,
                                     const AttributeSample& target) const {
  return source.NonNullCount() > 0 && target.NonNullCount() > 0;
}

double ValueOverlapMatcher::Score(const AttributeSample& source,
                                  const AttributeSample& target) const {
  std::set<std::string> target_values;
  for (const Value& v : target.values()) {
    if (!v.is_null()) target_values.insert(v.ToString());
  }
  std::set<std::string> source_values;
  for (const Value& v : source.values()) {
    if (!v.is_null()) source_values.insert(v.ToString());
  }
  if (source_values.empty()) return 0.0;
  size_t hits = 0;
  for (const std::string& v : source_values) {
    if (target_values.count(v) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(source_values.size());
}

std::vector<std::unique_ptr<AttributeMatcher>> DefaultMatcherSuite() {
  std::vector<std::unique_ptr<AttributeMatcher>> suite;
  suite.push_back(std::make_unique<NameMatcher>(0.5));
  suite.push_back(std::make_unique<QGramMatcher>(1.0));
  suite.push_back(std::make_unique<TfIdfTokenMatcher>(1.0));
  suite.push_back(std::make_unique<NumericMatcher>(1.0));
  return suite;
}

}  // namespace csm
