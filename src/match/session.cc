#include "match/session.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "match/matchers.h"
#include "stats/distributions.h"

namespace csm {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

TableMatchSession::TableMatchSession(
    const Table& source, const Database& target,
    std::vector<std::unique_ptr<AttributeMatcher>> matchers,
    MatchOptions options)
    : source_table_(source.name()),
      options_(options),
      matchers_(std::move(matchers)) {
  CSM_CHECK(!matchers_.empty()) << "match session needs at least one matcher";

  for (const auto& attr : source.schema().attributes()) {
    source_samples_.push_back(AttributeSample::FromTable(source, attr.name));
  }
  for (const Table& table : target.tables()) {
    for (const auto& attr : table.schema().attributes()) {
      target_samples_.push_back(AttributeSample::FromTable(table, attr.name));
      target_refs_.push_back(target_samples_.back().ref());
    }
  }

  std::vector<const AttributeSample*> target_ptrs;
  target_ptrs.reserve(target_samples_.size());
  for (const auto& sample : target_samples_) target_ptrs.push_back(&sample);
  for (auto& matcher : matchers_) matcher->Prepare(target_ptrs);

  // Score every applicable (matcher, source, target) triple and record the
  // per-(matcher, source) score distribution across targets.
  raw_scores_.assign(matchers_.size(), {});
  for (size_t m = 0; m < matchers_.size(); ++m) {
    raw_scores_[m].assign(source_samples_.size(),
                          std::vector<double>(target_samples_.size(), kNaN));
    for (size_t s = 0; s < source_samples_.size(); ++s) {
      if (source_samples_[s].NonNullCount() < options_.min_non_null_values) {
        continue;
      }
      DescriptiveStats distribution;
      for (size_t t = 0; t < target_samples_.size(); ++t) {
        if (target_samples_[t].NonNullCount() <
            options_.min_non_null_values) {
          continue;
        }
        if (!matchers_[m]->Applicable(source_samples_[s],
                                      target_samples_[t])) {
          continue;
        }
        double score =
            matchers_[m]->Score(source_samples_[s], target_samples_[t]);
        raw_scores_[m][s][t] = score;
        distribution.Add(score);
      }
      if (!distribution.empty()) {
        distributions_[DistributionKey{m, s}] = distribution;
      }
    }
  }
}

double TableMatchSession::Confidence(size_t matcher_index,
                                     size_t source_index,
                                     double raw_score) const {
  auto it = distributions_.find(DistributionKey{matcher_index, source_index});
  if (it == distributions_.end()) return 0.0;
  const DescriptiveStats& d = it->second;
  double stddev = std::max(d.PopulationStdDev(), options_.min_score_stddev);
  double relative = NormalCdf(ZScore(raw_score, d.Mean(), stddev));
  if (!options_.blend_raw_score) return relative;
  return std::sqrt(relative * std::clamp(raw_score, 0.0, 1.0));
}

MatchScore TableMatchSession::CombineForBag(const AttributeSample& sample,
                                            size_t source_index,
                                            size_t target_index) const {
  MatchScore out;
  double weight_total = 0.0;
  double score_sum = 0.0;
  double confidence_sum = 0.0;
  for (size_t m = 0; m < matchers_.size(); ++m) {
    const AttributeSample& target = target_samples_[target_index];
    if (!matchers_[m]->Applicable(sample, target)) continue;
    // Only matchers with a recorded distribution can produce confidences.
    if (distributions_.find(DistributionKey{m, source_index}) ==
        distributions_.end()) {
      continue;
    }
    double raw = matchers_[m]->Score(sample, target);
    double weight = matchers_[m]->Weight();
    score_sum += weight * raw;
    confidence_sum += weight * Confidence(m, source_index, raw);
    weight_total += weight;
    ++out.matchers_used;
  }
  if (weight_total > 0.0) {
    out.score = score_sum / weight_total;
    out.confidence = confidence_sum / weight_total;
  }
  return out;
}

size_t TableMatchSession::SourceIndex(std::string_view attribute) const {
  for (size_t s = 0; s < source_samples_.size(); ++s) {
    if (source_samples_[s].ref().attribute == attribute) return s;
  }
  CSM_CHECK(false) << "unknown source attribute '" << attribute << "'";
  return 0;
}

size_t TableMatchSession::TargetIndex(const AttributeRef& target) const {
  for (size_t t = 0; t < target_refs_.size(); ++t) {
    if (target_refs_[t] == target) return t;
  }
  CSM_CHECK(false) << "unknown target attribute '" << target.ToString() << "'";
  return 0;
}

MatchScore TableMatchSession::PairScore(std::string_view source_attribute,
                                        const AttributeRef& target) const {
  size_t s = SourceIndex(source_attribute);
  size_t t = TargetIndex(target);
  MatchScore out;
  double weight_total = 0.0;
  double score_sum = 0.0;
  double confidence_sum = 0.0;
  for (size_t m = 0; m < matchers_.size(); ++m) {
    double raw = raw_scores_[m][s][t];
    if (std::isnan(raw)) continue;
    double weight = matchers_[m]->Weight();
    score_sum += weight * raw;
    confidence_sum += weight * Confidence(m, s, raw);
    weight_total += weight;
    ++out.matchers_used;
  }
  if (weight_total > 0.0) {
    out.score = score_sum / weight_total;
    out.confidence = confidence_sum / weight_total;
  }
  return out;
}

MatchScore TableMatchSession::ScoreRestricted(
    std::string_view source_attribute, const std::vector<Value>& restricted_bag,
    const AttributeRef& target) const {
  AttributeSample restricted =
      MakeRestrictedSample(source_attribute, restricted_bag);
  return ScoreRestrictedSample(restricted, target);
}

AttributeSample TableMatchSession::MakeRestrictedSample(
    std::string_view source_attribute, std::vector<Value> restricted_bag) const {
  size_t s = SourceIndex(source_attribute);
  return AttributeSample(source_samples_[s].ref(),
                         source_samples_[s].declared_type(),
                         std::move(restricted_bag));
}

MatchScore TableMatchSession::ScoreRestrictedSample(
    const AttributeSample& sample, const AttributeRef& target) const {
  size_t s = SourceIndex(sample.ref().attribute);
  size_t t = TargetIndex(target);
  if (sample.NonNullCount() < options_.min_non_null_values) {
    return MatchScore{};
  }
  return CombineForBag(sample, s, t);
}

MatchList TableMatchSession::AcceptedMatches(double tau) const {
  MatchList out;
  for (size_t s = 0; s < source_samples_.size(); ++s) {
    for (size_t t = 0; t < target_refs_.size(); ++t) {
      MatchScore ms = PairScore(source_samples_[s].ref().attribute,
                                target_refs_[t]);
      if (ms.matchers_used == 0 || ms.confidence < tau) continue;
      Match match;
      match.source = source_samples_[s].ref();
      match.target = target_refs_[t];
      match.condition = Condition::True();
      match.score = ms.score;
      match.confidence = ms.confidence;
      out.push_back(std::move(match));
    }
  }
  std::sort(out.begin(), out.end(), [](const Match& a, const Match& b) {
    if (a.confidence != b.confidence) return a.confidence > b.confidence;
    if (a.source < b.source) return true;
    if (b.source < a.source) return false;
    return a.target < b.target;
  });
  return out;
}

std::vector<std::string> TableMatchSession::source_attributes() const {
  std::vector<std::string> out;
  out.reserve(source_samples_.size());
  for (const auto& sample : source_samples_) {
    out.push_back(sample.ref().attribute);
  }
  return out;
}

MatchList StandardMatch(const Table& source, const Database& target,
                        double tau, MatchOptions options) {
  TableMatchSession session(source, target, DefaultMatcherSuite(), options);
  return session.AcceptedMatches(tau);
}

}  // namespace csm
