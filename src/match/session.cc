#include "match/session.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string_view>

#include "common/logging.h"
#include "match/matchers.h"
#include "relational/sample.h"
#include "stats/distributions.h"

namespace csm {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

void TableMatchSession::BuildSamples(const Table& source,
                                     const Database& target) {
  // Training cap: bags come from a deterministic per-table row sample when
  // the table is larger than max_training_rows.  The draw depends only on
  // (options, table name, row count), so the restore constructor — which
  // calls BuildSamples with the same tables and options — reproduces the
  // exact bags the scoring constructor trained on.
  auto capped = [&](const Table& table) -> Table {
    Rng rng(DeriveTableSampleSeed(options_.training_sample_seed, table.name()));
    return ReservoirSampleRows(table, options_.max_training_rows, rng);
  };
  const bool cap_source = options_.max_training_rows > 0 &&
                          source.num_rows() > options_.max_training_rows;
  const Table source_capped = cap_source ? capped(source) : Table();
  const Table& src = cap_source ? source_capped : source;
  for (const auto& attr : src.schema().attributes()) {
    source_samples_.push_back(AttributeSample::FromTable(src, attr.name));
  }
  for (const Table& table : target.tables()) {
    const bool cap = options_.max_training_rows > 0 &&
                     table.num_rows() > options_.max_training_rows;
    const Table table_capped = cap ? capped(table) : Table();
    const Table& tgt = cap ? table_capped : table;
    for (const auto& attr : tgt.schema().attributes()) {
      target_samples_.push_back(AttributeSample::FromTable(tgt, attr.name));
      target_refs_.push_back(target_samples_.back().ref());
    }
  }

  std::vector<const AttributeSample*> target_ptrs;
  target_ptrs.reserve(target_samples_.size());
  for (const auto& sample : target_samples_) target_ptrs.push_back(&sample);
  for (auto& matcher : matchers_) matcher->Prepare(target_ptrs);
}

void TableMatchSession::ReplayDistributions() {
  for (size_t m = 0; m < matchers_.size(); ++m) {
    for (size_t s = 0; s < source_samples_.size(); ++s) {
      DescriptiveStats distribution;
      for (size_t t = 0; t < target_samples_.size(); ++t) {
        double score = raw_scores_[m][s][t];
        if (!std::isnan(score)) distribution.Add(score);
      }
      if (!distribution.empty()) {
        distributions_[DistributionKey{m, s}] = distribution;
      }
    }
  }
}

TableMatchSession::TableMatchSession(
    const Table& source, const Database& target,
    std::vector<std::unique_ptr<AttributeMatcher>> matchers,
    MatchOptions options)
    : source_table_(source.name()),
      options_(options),
      matchers_(std::move(matchers)) {
  CSM_CHECK(!matchers_.empty()) << "match session needs at least one matcher";
  BuildSamples(source, target);

  // Score every applicable (matcher, source, target) triple and record the
  // per-(matcher, source) score distribution across targets.
  raw_scores_.assign(matchers_.size(), {});
  for (size_t m = 0; m < matchers_.size(); ++m) {
    raw_scores_[m].assign(source_samples_.size(),
                          std::vector<double>(target_samples_.size(), kNaN));
    for (size_t s = 0; s < source_samples_.size(); ++s) {
      if (source_samples_[s].NonNullCount() < options_.min_non_null_values) {
        continue;
      }
      DescriptiveStats distribution;
      for (size_t t = 0; t < target_samples_.size(); ++t) {
        if (target_samples_[t].NonNullCount() <
            options_.min_non_null_values) {
          continue;
        }
        if (!matchers_[m]->Applicable(source_samples_[s],
                                      target_samples_[t])) {
          continue;
        }
        double score =
            matchers_[m]->Score(source_samples_[s], target_samples_[t]);
        raw_scores_[m][s][t] = score;
        distribution.Add(score);
      }
      if (!distribution.empty()) {
        distributions_[DistributionKey{m, s}] = distribution;
      }
    }
  }
}

TableMatchSession::TableMatchSession(
    const Table& source, const Database& target,
    std::vector<std::unique_ptr<AttributeMatcher>> matchers,
    const MatchOptions& options, RestoredScores scores)
    : source_table_(source.name()),
      options_(options),
      matchers_(std::move(matchers)) {
  CSM_CHECK(!matchers_.empty()) << "match session needs at least one matcher";
  BuildSamples(source, target);

  CSM_CHECK(scores.raw.size() == matchers_.size())
      << "restored scores have " << scores.raw.size() << " matchers, suite has "
      << matchers_.size();
  for (const auto& per_source : scores.raw) {
    CSM_CHECK(per_source.size() == source_samples_.size())
        << "restored scores do not fit the source schema";
    for (const auto& per_target : per_source) {
      CSM_CHECK(per_target.size() == target_samples_.size())
          << "restored scores do not fit the target schema";
    }
  }
  raw_scores_ = std::move(scores.raw);
  ReplayDistributions();
}

double TableMatchSession::Confidence(size_t matcher_index,
                                     size_t source_index,
                                     double raw_score) const {
  auto it = distributions_.find(DistributionKey{matcher_index, source_index});
  if (it == distributions_.end()) return 0.0;
  const DescriptiveStats& d = it->second;
  double stddev = std::max(d.PopulationStdDev(), options_.min_score_stddev);
  double relative = NormalCdf(ZScore(raw_score, d.Mean(), stddev));
  if (!options_.blend_raw_score) return relative;
  return std::sqrt(relative * std::clamp(raw_score, 0.0, 1.0));
}

MatchScore TableMatchSession::CombineForBag(const AttributeSample& sample,
                                            size_t source_index,
                                            size_t target_index) const {
  MatchScore out;
  double weight_total = 0.0;
  double score_sum = 0.0;
  double confidence_sum = 0.0;
  for (size_t m = 0; m < matchers_.size(); ++m) {
    const AttributeSample& target = target_samples_[target_index];
    if (!matchers_[m]->Applicable(sample, target)) continue;
    // Only matchers with a recorded distribution can produce confidences.
    if (distributions_.find(DistributionKey{m, source_index}) ==
        distributions_.end()) {
      continue;
    }
    double raw = matchers_[m]->Score(sample, target);
    double weight = matchers_[m]->Weight();
    score_sum += weight * raw;
    confidence_sum += weight * Confidence(m, source_index, raw);
    weight_total += weight;
    ++out.matchers_used;
  }
  if (weight_total > 0.0) {
    out.score = score_sum / weight_total;
    out.confidence = confidence_sum / weight_total;
  }
  return out;
}

size_t TableMatchSession::SourceIndex(std::string_view attribute) const {
  for (size_t s = 0; s < source_samples_.size(); ++s) {
    if (source_samples_[s].ref().attribute == attribute) return s;
  }
  CSM_CHECK(false) << "unknown source attribute '" << attribute << "'";
  return 0;
}

size_t TableMatchSession::TargetIndex(const AttributeRef& target) const {
  for (size_t t = 0; t < target_refs_.size(); ++t) {
    if (target_refs_[t] == target) return t;
  }
  CSM_CHECK(false) << "unknown target attribute '" << target.ToString() << "'";
  return 0;
}

MatchScore TableMatchSession::PairScore(std::string_view source_attribute,
                                        const AttributeRef& target) const {
  size_t s = SourceIndex(source_attribute);
  size_t t = TargetIndex(target);
  MatchScore out;
  double weight_total = 0.0;
  double score_sum = 0.0;
  double confidence_sum = 0.0;
  for (size_t m = 0; m < matchers_.size(); ++m) {
    double raw = raw_scores_[m][s][t];
    if (std::isnan(raw)) continue;
    double weight = matchers_[m]->Weight();
    score_sum += weight * raw;
    confidence_sum += weight * Confidence(m, s, raw);
    weight_total += weight;
    ++out.matchers_used;
  }
  if (weight_total > 0.0) {
    out.score = score_sum / weight_total;
    out.confidence = confidence_sum / weight_total;
  }
  return out;
}

MatchScore TableMatchSession::ScoreRestricted(
    std::string_view source_attribute, const std::vector<Value>& restricted_bag,
    const AttributeRef& target) const {
  AttributeSample restricted =
      MakeRestrictedSample(source_attribute, restricted_bag);
  return ScoreRestrictedSample(restricted, target);
}

AttributeSample TableMatchSession::MakeRestrictedSample(
    std::string_view source_attribute, std::vector<Value> restricted_bag) const {
  size_t s = SourceIndex(source_attribute);
  return AttributeSample(source_samples_[s].ref(),
                         source_samples_[s].declared_type(),
                         std::move(restricted_bag));
}

MatchScore TableMatchSession::ScoreRestrictedSample(
    const AttributeSample& sample, const AttributeRef& target) const {
  size_t s = SourceIndex(sample.ref().attribute);
  size_t t = TargetIndex(target);
  if (sample.NonNullCount() < options_.min_non_null_values) {
    return MatchScore{};
  }
  return CombineForBag(sample, s, t);
}

MatchList TableMatchSession::AcceptedMatches(double tau) const {
  MatchList out;
  for (size_t s = 0; s < source_samples_.size(); ++s) {
    for (size_t t = 0; t < target_refs_.size(); ++t) {
      MatchScore ms = PairScore(source_samples_[s].ref().attribute,
                                target_refs_[t]);
      if (ms.matchers_used == 0 || ms.confidence < tau) continue;
      Match match;
      match.source = source_samples_[s].ref();
      match.target = target_refs_[t];
      match.condition = Condition::True();
      match.score = ms.score;
      match.confidence = ms.confidence;
      out.push_back(std::move(match));
    }
  }
  std::sort(out.begin(), out.end(), [](const Match& a, const Match& b) {
    if (a.confidence != b.confidence) return a.confidence > b.confidence;
    if (a.source < b.source) return true;
    if (b.source < a.source) return false;
    return a.target < b.target;
  });
  return out;
}

std::vector<std::string> TableMatchSession::source_attributes() const {
  std::vector<std::string> out;
  out.reserve(source_samples_.size());
  for (const auto& sample : source_samples_) {
    out.push_back(sample.ref().attribute);
  }
  return out;
}

void TableMatchSession::AppendSerializedScores(std::string* out) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "scores %zu %zu %zu\n", matchers_.size(),
                source_samples_.size(), target_samples_.size());
  out->append(buf);
  for (const auto& per_source : raw_scores_) {
    for (const auto& per_target : per_source) {
      for (size_t t = 0; t < per_target.size(); ++t) {
        if (t > 0) out->push_back(' ');
        double v = per_target[t];
        if (std::isnan(v)) {
          out->append("nan");
        } else {
          // Hexfloat: exact round-trip through strtod, no rounding.
          std::snprintf(buf, sizeof(buf), "%a", v);
          out->append(buf);
        }
      }
      out->push_back('\n');
    }
  }
}

StatusOr<TableMatchSession::RestoredScores>
TableMatchSession::ParseSerializedScores(const std::string& blob,
                                         size_t* pos) {
  auto fail = [](const char* msg) {
    return Status::InvalidArgument(std::string("session scores: ") + msg);
  };
  auto read_line = [&](std::string_view* line) {
    if (*pos >= blob.size()) return false;
    size_t end = blob.find('\n', *pos);
    if (end == std::string::npos) return false;
    *line = std::string_view(blob).substr(*pos, end - *pos);
    *pos = end + 1;
    return true;
  };

  std::string_view header;
  if (!read_line(&header)) return fail("missing header line");
  size_t matchers = 0, sources = 0, targets = 0;
  if (std::sscanf(std::string(header).c_str(), "scores %zu %zu %zu",
                  &matchers, &sources, &targets) != 3) {
    return fail("bad header line");
  }
  // A corrupted header must not drive allocation: the score grid of a real
  // session is matchers x attributes x attributes, far below these caps.
  constexpr size_t kMaxDim = 1u << 20;
  if (matchers == 0 || matchers > kMaxDim || sources > kMaxDim ||
      targets > kMaxDim) {
    return fail("implausible dimensions");
  }

  RestoredScores out;
  out.raw.assign(matchers, {});
  for (size_t m = 0; m < matchers; ++m) {
    out.raw[m].assign(sources, std::vector<double>(targets, kNaN));
    for (size_t s = 0; s < sources; ++s) {
      std::string_view line;
      if (!read_line(&line)) return fail("truncated score matrix");
      std::string row(line);  // NUL-terminated scratch for strtod
      const char* cursor = row.c_str();
      for (size_t t = 0; t < targets; ++t) {
        char* after = nullptr;
        double v = std::strtod(cursor, &after);
        if (after == cursor) return fail("short score row");
        out.raw[m][s][t] = v;
        cursor = after;
      }
      // The row must be fully consumed (trailing whitespace only).
      while (*cursor == ' ') ++cursor;
      if (*cursor != '\0') return fail("long score row");
    }
  }
  return out;
}

MatchList StandardMatch(const Table& source, const Database& target,
                        double tau, MatchOptions options) {
  TableMatchSession session(source, target, DefaultMatcherSuite(), options);
  return session.AcceptedMatches(tau);
}

}  // namespace csm
