#include "match/match_types.h"

#include "common/string_util.h"

namespace csm {

std::string Match::ToString() const {
  std::string out = source.ToString() + " -> " + target.ToString();
  if (!condition.is_true()) {
    out += condition_on_target ? " [target: " : " [";
    out += condition.ToString() + "]";
  }
  out += StrFormat(" (score %.3f, conf %.3f)", score, confidence);
  return out;
}

bool SameCorrespondence(const Match& a, const Match& b) {
  return a.source == b.source && a.target == b.target &&
         a.condition == b.condition;
}

}  // namespace csm
