// ParallelFor / ParallelMap: order-preserving data-parallel loops on top of
// exec::ThreadPool.
//
// Contract: the result (including exception behaviour and output order) is
// identical whether the loop runs serially or on N workers — parallelism
// only changes wall-clock time.  Callers are responsible for making the
// body safe to run concurrently for distinct indices; per-task RNG streams
// come from exec/task_rng.h, never from shared mutable generators.

#ifndef CSM_EXEC_PARALLEL_H_
#define CSM_EXEC_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"

namespace csm {
namespace exec {

/// Runs body(i) for every i in [0, n).  Serial when `pool` is null, has a
/// single worker, n <= 1, or the calling thread is itself a pool worker
/// (the nested-submit deadlock guard — inline execution needs no queue
/// slot, so nesting can never exhaust the pool).
///
/// The first exception thrown by any invocation is rethrown on the calling
/// thread after all in-flight iterations finish; remaining unclaimed
/// iterations are abandoned.  The calling thread participates in the loop,
/// so progress is guaranteed even if the pool is busy elsewhere.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body);

/// Runs fn(i) for every i in [0, n) and returns the results in index order.
/// T must be default-constructible and move-assignable.  Same serial /
/// exception semantics as ParallelFor.
template <typename Fn>
auto ParallelMap(ThreadPool* pool, size_t n, Fn&& fn)
    -> std::vector<decltype(fn(size_t{0}))> {
  using T = decltype(fn(size_t{0}));
  std::vector<T> out(n);
  ParallelFor(pool, n, [&](size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace exec
}  // namespace csm

#endif  // CSM_EXEC_PARALLEL_H_
