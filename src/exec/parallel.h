// ParallelFor / ParallelMap: order-preserving data-parallel loops on top of
// exec::ThreadPool, plus CancellableChunkedMap, the deadline-aware variant
// the pipeline's degradation contracts are built on.
//
// Contract: the result (including exception behaviour and output order) is
// identical whether the loop runs serially or on N workers — parallelism
// only changes wall-clock time.  Callers are responsible for making the
// body safe to run concurrently for distinct indices; per-task RNG streams
// come from exec/task_rng.h, never from shared mutable generators.
//
// Cancellation: when a CancellationToken is supplied, ParallelFor becomes
// cooperative — the caller and every helper poll the token between
// iteration claims and *drain* (finish what they claimed, stop claiming)
// once it is cancelled.  Which iterations ran is then schedule-dependent;
// use ParallelFor+token only where the partial output is discarded or
// order-insensitive.  CancellableChunkedMap is the deterministic
// alternative: fixed chunks, token checked only at chunk barriers, a chunk
// always completes once started, so the completed prefix depends only on
// *when the token was cancelled in logical work units*, not on the thread
// count (see DESIGN.md "Failure model, deadlines & degradation").

#ifndef CSM_EXEC_PARALLEL_H_
#define CSM_EXEC_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "exec/thread_pool.h"

namespace csm {
namespace exec {

/// Runs body(i) for every i in [0, n).  Serial when `pool` is null, has a
/// single worker, n <= 1, or the calling thread is itself a pool worker
/// (the nested-submit deadlock guard — inline execution needs no queue
/// slot, so nesting can never exhaust the pool).
///
/// The first exception thrown by any invocation is rethrown on the calling
/// thread after all in-flight iterations finish; remaining unclaimed
/// iterations are abandoned.  The calling thread participates in the loop,
/// so progress is guaranteed even if the pool is busy elsewhere.
///
/// With a non-null `cancel`, every participant checks the token before
/// claiming each iteration and drains once it is cancelled; iterations
/// that were never claimed simply do not run.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body,
                 const CancellationToken* cancel = nullptr);

/// Runs fn(i) for every i in [0, n) and returns the results in index order.
/// T must be default-constructible and move-assignable.  Same serial /
/// exception / cancellation semantics as ParallelFor (skipped iterations
/// leave default-constructed slots).
template <typename Fn>
auto ParallelMap(ThreadPool* pool, size_t n, Fn&& fn,
                 const CancellationToken* cancel = nullptr)
    -> std::vector<decltype(fn(size_t{0}))> {
  using T = decltype(fn(size_t{0}));
  std::vector<T> out(n);
  ParallelFor(
      pool, n, [&](size_t i) { out[i] = fn(i); }, cancel);
  return out;
}

/// Outcome of a CancellableChunkedMap: how much of the range completed and
/// whether the token was observed cancelled at a barrier.
struct ChunkedMapCut {
  size_t completed = 0;   // leading items fully computed (a prefix)
  bool cancelled = false;
};

/// Maps fn over [0, n) in fixed chunks of `chunk` items.  Each chunk runs
/// through ParallelFor (without a token — a started chunk always runs to
/// completion); the token is checked once per chunk on the calling thread,
/// *between* chunks.  On cancellation the loop stops and the returned
/// vector is truncated to the completed prefix.
///
/// Determinism: chunk boundaries depend only on n and `chunk`.  When the
/// cancellation trigger is itself a deterministic function of the logical
/// work (a FaultInjector spec armed on a fixed index), the completed prefix
/// — and therefore the whole output — is bit-identical at any thread
/// count.  Wall-clock deadlines cancel at a nondeterministic chunk, but
/// the output is still always a well-formed prefix of complete chunks.
///
/// Latency: once the token is cancelled, at most one chunk of work remains
/// in flight, so keep `chunk` small enough that a chunk's work fits the
/// acceptable overshoot past a deadline.
template <typename Fn>
auto CancellableChunkedMap(ThreadPool* pool, size_t n, size_t chunk,
                           const CancellationToken* cancel,
                           ChunkedMapCut* cut, Fn&& fn)
    -> std::vector<decltype(fn(size_t{0}))> {
  using T = decltype(fn(size_t{0}));
  if (chunk == 0) chunk = 1;
  std::vector<T> out(n);
  size_t completed = 0;
  bool cancelled = false;
  for (size_t begin = 0; begin < n; begin += chunk) {
    if (cancel != nullptr && cancel->cancelled()) {
      cancelled = true;
      break;
    }
    const size_t end = std::min(n, begin + chunk);
    ParallelFor(pool, end - begin,
                [&](size_t i) { out[begin + i] = fn(begin + i); });
    completed = end;
  }
  out.resize(completed);
  if (cut != nullptr) {
    cut->completed = completed;
    // A cancellation that lands during the final chunk still degrades the
    // run (the caller must report it) even though the output is complete.
    cut->cancelled =
        cancelled || (cancel != nullptr && cancel->cancelled());
  }
  return out;
}

}  // namespace exec
}  // namespace csm

#endif  // CSM_EXEC_PARALLEL_H_
