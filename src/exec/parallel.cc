#include "exec/parallel.h"

namespace csm {
namespace exec {
namespace {

/// State shared by the caller and the helper tasks of one ParallelFor.
/// Heap-allocated and shared_ptr-owned so helper tasks that lose the race
/// with the caller's final wake-up can still touch it safely.
struct LoopState {
  LoopState(size_t n, const CancellationToken* cancel_token)
      : limit(n), cancel(cancel_token) {}

  const size_t limit;
  const CancellationToken* const cancel;  // may be null
  std::atomic<size_t> next{0};
  std::atomic<bool> abort{false};

  std::mutex mu;
  std::condition_variable done_cv;
  size_t helpers_running = 0;
  std::exception_ptr first_exception;  // guarded by mu

  /// Claims and runs iterations until the range is drained, aborted, or
  /// the token is cancelled (the cooperative checkpoint: polled before
  /// every claim, so in-flight bodies finish but no new work starts).
  void Drain(const std::function<void(size_t)>& body) {
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) return;
      if (cancel != nullptr && cancel->cancelled()) return;
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= limit) return;
      try {
        body(i);
      } catch (...) {
        abort.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu);
        if (!first_exception) first_exception = std::current_exception();
        return;
      }
    }
  }
};

}  // namespace

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body,
                 const CancellationToken* cancel) {
  if (n == 0) return;
  const bool serial =
      pool == nullptr || pool->size() <= 1 || n == 1 || ThreadPool::InWorker();
  if (serial) {
    for (size_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->cancelled()) return;
      body(i);
    }
    return;
  }

  auto state = std::make_shared<LoopState>(n, cancel);
  // The caller participates too, so helpers beyond n-1 are pointless.
  const size_t helpers = std::min(pool->size(), n - 1);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->helpers_running = helpers;
  }
  for (size_t h = 0; h < helpers; ++h) {
    pool->Submit([state, &body] {
      state->Drain(body);
      std::lock_guard<std::mutex> lock(state->mu);
      if (--state->helpers_running == 0) state->done_cv.notify_all();
    });
  }

  state->Drain(body);

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->helpers_running == 0; });
  if (state->first_exception) std::rethrow_exception(state->first_exception);
}

}  // namespace exec
}  // namespace csm
