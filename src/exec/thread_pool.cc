#include "exec/thread_pool.h"

#include <string>
#include <utility>

#include "common/fault_injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace csm {
namespace exec {
namespace {

/// Set for the lifetime of a worker's loop; read by InWorker().
thread_local bool tls_in_worker = false;

using Clock = std::chrono::steady_clock;

double SecondsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::SetObservability(obs::MetricsRegistry* metrics,
                                  obs::Tracer* tracer) {
  std::unique_lock<std::mutex> lock(mu_);
  // Quiesce: wait out workers still reporting into the old sinks.
  obs_quiesced_cv_.wait(lock, [this] { return obs_users_ == 0; });
  metrics_ = metrics;
  tracer_ = tracer;
  if (metrics_ != nullptr) {
    metrics_->SetGauge("pool.threads", static_cast<double>(workers_.size()));
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  QueuedTask queued;
  queued.fn = std::move(task);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (metrics_ != nullptr) {
      queued.enqueued = Clock::now();
    }
    if (tracer_ != nullptr) {
      queued.parent_span = obs::Tracer::CurrentSpan();
    }
    queue_.push_back(std::move(queued));
    if (metrics_ != nullptr) {
      metrics_->SetGauge("pool.queue_depth",
                         static_cast<double>(queue_.size()));
      metrics_->AddCounter("pool.tasks_submitted");
    }
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  tls_in_worker = true;
  for (;;) {
    QueuedTask task;
    obs::MetricsRegistry* metrics = nullptr;
    obs::Tracer* tracer = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      metrics = metrics_;
      tracer = tracer_;
      if (metrics != nullptr || tracer != nullptr) ++obs_users_;
      if (metrics != nullptr) {
        metrics->SetGauge("pool.queue_depth",
                          static_cast<double>(queue_.size()));
      }
    }
    const Clock::time_point run_start = Clock::now();
    if (metrics != nullptr &&
        task.enqueued != Clock::time_point()) {
      metrics->Observe("pool.task_wait_seconds",
                       SecondsBetween(task.enqueued, run_start));
    }
    // Fault site: slow-worker injection before the task body runs.  The
    // sequence number is schedule-dependent, so only kSleep arms are
    // meaningful here (see common/fault_injector.h).
    FaultInjector::Hit("pool.task", task_seq_.fetch_add(
                                        1, std::memory_order_relaxed));
    {
      obs::ScopedSpan span(tracer, "pool_task", task.parent_span);
      task.fn();
    }
    if (metrics != nullptr) {
      const double run_seconds = SecondsBetween(run_start, Clock::now());
      metrics->Observe("pool.task_run_seconds", run_seconds);
      metrics->AddGauge(
          "pool.worker." + std::to_string(worker_index) + ".busy_seconds",
          run_seconds);
      metrics->AddCounter("pool.tasks_run");
    }
    if (metrics != nullptr || tracer != nullptr) {
      std::lock_guard<std::mutex> lock(mu_);
      if (--obs_users_ == 0) obs_quiesced_cv_.notify_all();
    }
  }
}

bool ThreadPool::InWorker() { return tls_in_worker; }

size_t ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

size_t EffectiveThreads(size_t threads) {
  return threads == 0 ? ThreadPool::HardwareThreads() : threads;
}

}  // namespace exec
}  // namespace csm
