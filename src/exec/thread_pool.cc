#include "exec/thread_pool.h"

#include <utility>

namespace csm {
namespace exec {
namespace {

/// Set for the lifetime of a worker's loop; read by InWorker().
thread_local bool tls_in_worker = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  tls_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::InWorker() { return tls_in_worker; }

size_t ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

size_t EffectiveThreads(size_t threads) {
  return threads == 0 ? ThreadPool::HardwareThreads() : threads;
}

}  // namespace exec
}  // namespace csm
