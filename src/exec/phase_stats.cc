#include "exec/phase_stats.h"

#include "common/string_util.h"

namespace csm {
namespace exec {

void PhaseStats::AddSeconds(const std::string& phase, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  seconds_[phase] += seconds;
}

void PhaseStats::AddCount(const std::string& counter, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  counts_[counter] += n;
}

double PhaseStats::Seconds(const std::string& phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = seconds_.find(phase);
  return it == seconds_.end() ? 0.0 : it->second;
}

uint64_t PhaseStats::Count(const std::string& counter) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counts_.find(counter);
  return it == counts_.end() ? 0 : it->second;
}

std::map<std::string, double> PhaseStats::SecondsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seconds_;
}

std::map<std::string, uint64_t> PhaseStats::CountsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

std::string PhaseStats::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [phase, seconds] : seconds_) {
    out += StrFormat("%s: %.3fs\n", phase.c_str(), seconds);
  }
  for (const auto& [counter, count] : counts_) {
    out += StrFormat("%s: %llu\n", counter.c_str(),
                     static_cast<unsigned long long>(count));
  }
  return out;
}

}  // namespace exec
}  // namespace csm
