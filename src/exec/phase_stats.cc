#include "exec/phase_stats.h"

#include "common/string_util.h"

namespace csm {
namespace exec {

std::string PhaseStats::ToString() const {
  const obs::PhaseReport report = registry_->Snapshot();
  std::string out;
  for (const auto& [phase, seconds] : report.seconds) {
    out += StrFormat("%s: %.3fs\n", phase.c_str(), seconds);
  }
  for (const auto& [counter, count] : report.counters) {
    out += StrFormat("%s: %llu\n", counter.c_str(),
                     static_cast<unsigned long long>(count));
  }
  return out;
}

}  // namespace exec
}  // namespace csm
