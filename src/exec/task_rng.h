// Deterministic per-task RNG splitting.
//
// Parallel phases must not thread one Rng through their tasks: the
// interleaving would depend on scheduling.  Instead the phase draws a
// single 64-bit phase seed from its sequential Rng, and every task derives
// an independent stream from (phase seed, task index).  The resulting
// streams are identical at any thread count, so results are bit-identical
// between threads=1 and threads=N.

#ifndef CSM_EXEC_TASK_RNG_H_
#define CSM_EXEC_TASK_RNG_H_

#include <cstdint>

#include "common/random.h"

namespace csm {
namespace exec {

/// Mixes (phase_seed, stream) into a task seed.  splitmix64-style finalizer
/// so consecutive stream indices produce uncorrelated seeds.
inline uint64_t TaskSeed(uint64_t phase_seed, uint64_t stream) {
  uint64_t z = phase_seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// An Rng positioned at the start of task `stream`'s private sequence.
inline Rng TaskRng(uint64_t phase_seed, uint64_t stream) {
  return Rng(TaskSeed(phase_seed, stream));
}

}  // namespace exec
}  // namespace csm

#endif  // CSM_EXEC_TASK_RNG_H_
