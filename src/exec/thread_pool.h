// A fixed-size thread pool: the execution substrate for the parallel
// phases of the matching pipeline (see exec/parallel.h for the ParallelFor
// / ParallelMap primitives built on top of it).
//
// Design constraints, in order:
//   1. Determinism — the pool never decides *what* work runs, only *where*;
//      task decomposition and RNG streams are fixed by the caller (see
//      exec/task_rng.h), so results are bit-identical at any pool size.
//   2. No exceptions across the pool boundary — tasks are noexcept-invoked
//      wrappers; ParallelFor captures the first std::exception_ptr and
//      rethrows on the calling thread.
//   3. Nested-submit safety — a worker thread that itself calls ParallelFor
//      runs the loop inline instead of submitting (a blocking wait inside a
//      worker would deadlock once all workers wait on each other).
//   4. Observable — optional sinks (SetObservability) record task wait/run
//      latency histograms, a queue-depth gauge, per-worker busy seconds and
//      one span per executed task.  With no sinks attached the only cost is
//      a null check per task.

#ifndef CSM_EXEC_THREAD_POOL_H_
#define CSM_EXEC_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/hooks.h"

namespace csm {
namespace exec {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 is clamped to 1).  The pool is fixed
  /// size for its whole lifetime.
  explicit ThreadPool(size_t num_threads);

  /// Drains nothing: pending tasks are still executed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Attaches (or with nulls, detaches) metrics/tracing sinks.  Blocks
  /// until no worker is still reporting into the previously attached sinks
  /// (a worker's span close and run-latency update happen *after* the task
  /// body — and ParallelFor's completion signal fires inside the body — so
  /// without the quiesce a caller could destroy a per-call registry while a
  /// straggler still writes to it).  After SetObservability returns, the
  /// old sinks are safe to destroy.  Metric names are documented in
  /// DESIGN.md "Observability".  Safe to call between (not during) bursts
  /// of Submit().
  void SetObservability(obs::MetricsRegistry* metrics, obs::Tracer* tracer);

  /// Enqueues a task.  Tasks must not throw (wrap with an exception_ptr
  /// capture — ParallelFor does).  Safe to call from any thread, including
  /// workers of this or another pool.  When a tracer is attached, the
  /// executed task gets a "pool_task" span parented under the submitting
  /// thread's current span.
  void Submit(std::function<void()> task);

  /// True when the calling thread is a worker of *any* ThreadPool.  Used as
  /// the nested-submit deadlock guard: parallel primitives called from a
  /// worker run inline.
  static bool InWorker();

  /// std::thread::hardware_concurrency() clamped to at least 1.
  static size_t HardwareThreads();

 private:
  struct QueuedTask {
    std::function<void()> fn;
    /// Set only when metrics are attached (wait-latency measurement).
    std::chrono::steady_clock::time_point enqueued;
    /// Submitting thread's current span (0 when no tracer attached).
    uint64_t parent_span = 0;
  };

  void WorkerLoop(size_t worker_index);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedTask> queue_;
  bool stopping_ = false;
  obs::MetricsRegistry* metrics_ = nullptr;  // guarded by mu_
  obs::Tracer* tracer_ = nullptr;            // guarded by mu_
  /// Workers currently holding a sampled copy of the sinks (from task pop
  /// until their post-task reporting is done); SetObservability waits for
  /// this to reach zero before swapping.  Guarded by mu_.
  size_t obs_users_ = 0;
  std::condition_variable obs_quiesced_cv_;
  /// Dispatch sequence number fed to the "pool.task" FaultInjector site
  /// (slow-worker injection; see common/fault_injector.h).
  std::atomic<uint64_t> task_seq_{0};
  std::vector<std::thread> workers_;
};

/// Resolves a `threads` knob to an effective worker count: 0 means "use all
/// hardware threads", anything else is taken literally.
size_t EffectiveThreads(size_t threads);

}  // namespace exec
}  // namespace csm

#endif  // CSM_EXEC_THREAD_POOL_H_
