// A fixed-size thread pool: the execution substrate for the parallel
// phases of the matching pipeline (see exec/parallel.h for the ParallelFor
// / ParallelMap primitives built on top of it).
//
// Design constraints, in order:
//   1. Determinism — the pool never decides *what* work runs, only *where*;
//      task decomposition and RNG streams are fixed by the caller (see
//      exec/task_rng.h), so results are bit-identical at any pool size.
//   2. No exceptions across the pool boundary — tasks are noexcept-invoked
//      wrappers; ParallelFor captures the first std::exception_ptr and
//      rethrows on the calling thread.
//   3. Nested-submit safety — a worker thread that itself calls ParallelFor
//      runs the loop inline instead of submitting (a blocking wait inside a
//      worker would deadlock once all workers wait on each other).

#ifndef CSM_EXEC_THREAD_POOL_H_
#define CSM_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace csm {
namespace exec {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 is clamped to 1).  The pool is fixed
  /// size for its whole lifetime.
  explicit ThreadPool(size_t num_threads);

  /// Drains nothing: pending tasks are still executed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues a task.  Tasks must not throw (wrap with an exception_ptr
  /// capture — ParallelFor does).  Safe to call from any thread, including
  /// workers of this or another pool.
  void Submit(std::function<void()> task);

  /// True when the calling thread is a worker of *any* ThreadPool.  Used as
  /// the nested-submit deadlock guard: parallel primitives called from a
  /// worker run inline.
  static bool InWorker();

  /// std::thread::hardware_concurrency() clamped to at least 1.
  static size_t HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Resolves a `threads` knob to an effective worker count: 0 means "use all
/// hardware threads", anything else is taken literally.
size_t EffectiveThreads(size_t threads);

}  // namespace exec
}  // namespace csm

#endif  // CSM_EXEC_THREAD_POOL_H_
