// Thread-safe per-phase timing and counter aggregation for the parallel
// pipeline: workers report into a shared PhaseStats, and the driver exports
// a plain-map snapshot into its result struct.

#ifndef CSM_EXEC_PHASE_STATS_H_
#define CSM_EXEC_PHASE_STATS_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace csm {
namespace exec {

/// Accumulates named wall-clock totals and event counters.  All methods are
/// safe to call concurrently.
class PhaseStats {
 public:
  void AddSeconds(const std::string& phase, double seconds);
  void AddCount(const std::string& counter, uint64_t n = 1);

  double Seconds(const std::string& phase) const;
  uint64_t Count(const std::string& counter) const;

  /// Plain-value snapshots for embedding into result structs.
  std::map<std::string, double> SecondsSnapshot() const;
  std::map<std::string, uint64_t> CountsSnapshot() const;

  /// "phase: 1.234s" / "counter: 42" lines, sorted by name.
  std::string ToString() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> seconds_;
  std::map<std::string, uint64_t> counts_;
};

/// RAII timer adding its elapsed wall-clock to `stats[phase]`.
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(PhaseStats* stats, std::string phase)
      : stats_(stats),
        phase_(std::move(phase)),
        start_(std::chrono::steady_clock::now()) {}

  ~ScopedPhaseTimer() {
    stats_->AddSeconds(
        phase_, std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start_)
                    .count());
  }

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  PhaseStats* stats_;
  std::string phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace exec
}  // namespace csm

#endif  // CSM_EXEC_PHASE_STATS_H_
