// Thread-safe per-phase timing and counter aggregation for the parallel
// pipeline.  Since the obs/ layer landed, PhaseStats is a thin view over an
// obs::MetricsRegistry rather than a parallel bookkeeping system: the
// legacy AddSeconds/AddCount surface forwards to the registry's seconds /
// counter sections, so code written against PhaseStats and code written
// against the registry aggregate into the same place.

#ifndef CSM_EXEC_PHASE_STATS_H_
#define CSM_EXEC_PHASE_STATS_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "obs/metrics.h"

namespace csm {
namespace exec {

/// Accumulates named wall-clock totals and event counters.  All methods are
/// safe to call concurrently.
class PhaseStats {
 public:
  /// Standalone stats (owns a private registry).
  PhaseStats() : owned_(std::make_unique<obs::MetricsRegistry>()),
                 registry_(owned_.get()) {}

  /// A view over an external registry (not owned; must outlive this view).
  explicit PhaseStats(obs::MetricsRegistry* registry) : registry_(registry) {}

  void AddSeconds(const std::string& phase, double seconds) {
    registry_->AddSeconds(phase, seconds);
  }
  void AddCount(const std::string& counter, uint64_t n = 1) {
    registry_->AddCounter(counter, n);
  }

  double Seconds(const std::string& phase) const {
    return registry_->Seconds(phase);
  }
  uint64_t Count(const std::string& counter) const {
    return registry_->Counter(counter);
  }

  /// Plain-value snapshots for embedding into result structs.
  std::map<std::string, double> SecondsSnapshot() const {
    return registry_->Snapshot().seconds;
  }
  std::map<std::string, uint64_t> CountsSnapshot() const {
    return registry_->Snapshot().counters;
  }

  /// The registry this view reports into.
  obs::MetricsRegistry* registry() const { return registry_; }

  /// "phase: 1.234s" / "counter: 42" lines, sorted by name.
  std::string ToString() const;

 private:
  std::unique_ptr<obs::MetricsRegistry> owned_;
  obs::MetricsRegistry* registry_;
};

/// RAII timer adding its elapsed wall-clock to `stats[phase]`.
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(PhaseStats* stats, std::string phase)
      : stats_(stats),
        phase_(std::move(phase)),
        start_(std::chrono::steady_clock::now()) {}

  ~ScopedPhaseTimer() {
    stats_->AddSeconds(
        phase_, std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start_)
                    .count());
  }

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  PhaseStats* stats_;
  std::string phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace exec
}  // namespace csm

#endif  // CSM_EXEC_PHASE_STATS_H_
