#include "stats/significance.h"

#include <algorithm>

#include "common/logging.h"
#include "stats/distributions.h"

namespace csm {

SignificanceResult ClassifierSignificance(size_t observed_correct,
                                          size_t test_size,
                                          double most_common_fraction) {
  CSM_CHECK_LE(observed_correct, test_size);
  SignificanceResult result;
  if (test_size == 0) return result;  // no evidence either way
  const double p = std::clamp(most_common_fraction, 0.0, 1.0);
  const double n = static_cast<double>(test_size);
  result.null_mean = BinomialMean(n, p);
  result.null_stddev = BinomialStdDev(n, p);
  result.z = ZScore(static_cast<double>(observed_correct), result.null_mean,
                    result.null_stddev);
  result.significance = NormalCdf(result.z);
  return result;
}

}  // namespace csm
