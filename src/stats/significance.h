// The ClusteredViewGen significance test (Section 3.2.2, "Score
// Significance").
//
// Null hypothesis: there is no correlation between the evidence attribute h
// and the categorical attribute l; labels are effectively random.  Under
// the null, the naive classifier C_Naive that always answers the most
// common training label v* gets a Binomial(n_test, p) number of test items
// right, where p is v*'s relative frequency in the *training* data.  The
// observed classifier's correct count k is converted to a z-score against
// that binomial and the "significance" is Phi(z): the probability that the
// null would produce a score below the observed one.  The family is
// accepted when significance > T (paper: 0.95).

#ifndef CSM_STATS_SIGNIFICANCE_H_
#define CSM_STATS_SIGNIFICANCE_H_

#include <cstddef>

namespace csm {

struct SignificanceResult {
  /// Phi(z) of the observed correct count against the naive-classifier null.
  double significance = 0.0;
  /// Expected correct count under the null.
  double null_mean = 0.0;
  /// Standard deviation of the null's correct count.
  double null_stddev = 0.0;
  /// z-score of the observed correct count.
  double z = 0.0;
};

/// Evaluates the test.
///
/// `observed_correct`   — test items the candidate classifier got right.
/// `test_size`          — total test items presented.
/// `most_common_fraction` — relative frequency of the most common label v*
///                          in the training data (the binomial p).
SignificanceResult ClassifierSignificance(size_t observed_correct,
                                          size_t test_size,
                                          double most_common_fraction);

}  // namespace csm

#endif  // CSM_STATS_SIGNIFICANCE_H_
