// Streaming descriptive statistics (Welford accumulation) used by the
// numeric matcher, the Gaussian classifier, and score normalization.

#ifndef CSM_STATS_DESCRIPTIVE_H_
#define CSM_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <limits>

namespace csm {

/// Accumulates count/mean/variance/min/max in one pass, numerically stable.
class DescriptiveStats {
 public:
  DescriptiveStats() = default;

  void Add(double x);

  /// Merges another accumulator into this one (parallel Welford).
  void Merge(const DescriptiveStats& other);

  size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// 0.0 when empty.
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Population variance; 0.0 with fewer than 1 sample.
  double PopulationVariance() const;

  /// Sample (n-1) variance; 0.0 with fewer than 2 samples.
  double SampleVariance() const;

  double PopulationStdDev() const;
  double SampleStdDev() const;

  /// +inf / -inf when empty.
  double Min() const { return min_; }
  double Max() const { return max_; }

  double Sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace csm

#endif  // CSM_STATS_DESCRIPTIVE_H_
