#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace csm {

void DescriptiveStats::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void DescriptiveStats::Merge(const DescriptiveStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double DescriptiveStats::PopulationVariance() const {
  if (count_ < 1) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double DescriptiveStats::SampleVariance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double DescriptiveStats::PopulationStdDev() const {
  return std::sqrt(PopulationVariance());
}

double DescriptiveStats::SampleStdDev() const {
  return std::sqrt(SampleVariance());
}

}  // namespace csm
