// Probability distribution helpers: the standard normal pdf/CDF/quantile
// and binomial moments, used by score normalization (Section 2.3) and the
// ClusteredViewGen significance test (Section 3.2.2).

#ifndef CSM_STATS_DISTRIBUTIONS_H_
#define CSM_STATS_DISTRIBUTIONS_H_

namespace csm {

/// Standard normal density.
double NormalPdf(double x);

/// Standard normal CDF Phi(x), accurate to ~1e-7 (erfc-based).
double NormalCdf(double x);

/// Inverse standard normal CDF (Acklam's rational approximation with one
/// Halley refinement); requires 0 < p < 1.
double NormalQuantile(double p);

/// Mean of Binomial(n, p).
double BinomialMean(double n, double p);

/// Standard deviation of Binomial(n, p).
double BinomialStdDev(double n, double p);

/// z-score of `x` given mean/stddev; 0 when stddev is ~0 and x == mean,
/// +/-inf-free saturation (clamped to +/-kMaxZ) otherwise.
double ZScore(double x, double mean, double stddev);

/// Largest |z| ZScore() will report.
inline constexpr double kMaxZ = 12.0;

}  // namespace csm

#endif  // CSM_STATS_DISTRIBUTIONS_H_
