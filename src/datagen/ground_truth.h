// Ground-truth match sets and the accuracy / precision / F-measure scoring
// of Section 5 ("Evaluating Accuracy"): matches are compared against
// manually designated correct attribute-level matches; accuracy is the
// percentage of correct matches found, precision the percentage of found
// matches that are correct, and *only edges originating from views are
// considered* — standard (condition-free) matches are ignored.

#ifndef CSM_DATAGEN_GROUND_TRUTH_H_
#define CSM_DATAGEN_GROUND_TRUTH_H_

#include <string>
#include <vector>

#include "match/match_types.h"
#include "relational/value.h"

namespace csm {

/// One designated-correct contextual match: source attribute -> target
/// attribute, valid when conditioned on `label_attribute` with values drawn
/// from `allowed_values` (e.g. Title -> BookTitle under ItemType in
/// {Book1, Book2}).
struct TruthEntry {
  std::string source_table;
  std::string source_attribute;
  std::string target_table;
  std::string target_attribute;
  /// The only attribute a correct condition may mention.
  std::string label_attribute;
  /// The label values a correct condition may select (subsets are correct;
  /// partial coverage earns fractional accuracy credit).
  std::vector<Value> allowed_values;

  std::string ToString() const;
};

struct GroundTruth {
  std::vector<TruthEntry> entries;
};

/// Scores for one evaluated match list.
struct MatchQuality {
  /// Accuracy (recall): mean per-entry coverage, where an entry's coverage
  /// is |allowed values selected by correct matches| / |allowed values|.
  double accuracy = 0.0;
  /// Fraction of emitted view matches that are correct.
  double precision = 0.0;
  /// Harmonic mean of accuracy and precision.
  double fmeasure = 0.0;

  size_t view_matches = 0;     // emitted matches with a condition
  size_t correct_matches = 0;  // of those, how many are correct
};

/// True when `match` is a correct realization of some truth entry: right
/// attribute pairing, and a 1-clause condition on the entry's label
/// attribute whose values are a subset of the allowed values.
bool IsCorrectMatch(const GroundTruth& truth, const Match& match);

/// Evaluates per Section 5; standard matches in `matches` are ignored.
MatchQuality EvaluateMatches(const GroundTruth& truth,
                             const MatchList& matches);

}  // namespace csm

#endif  // CSM_DATAGEN_GROUND_TRUTH_H_
