// The Grades data set (Section 5, "Grades data"): 200 students x 5 exams.
//
// Source grades_narrow(name, examNum, grade); target grades_wide(name,
// grade1..grade5).  Exam i's grades are N(40 + 10*(i-1), sigma); the grade
// data is generated independently for each schema so the means/deviations
// agree but the actual scores do not.  The correct mapping promotes
// examNum values to attributes: one view per examNum, joined on name
// (rule join 1).

#ifndef CSM_DATAGEN_GRADES_GEN_H_
#define CSM_DATAGEN_GRADES_GEN_H_

#include <cstdint>

#include "datagen/ground_truth.h"
#include "relational/table.h"

namespace csm {

struct GradesOptions {
  size_t num_students = 200;
  size_t num_exams = 5;
  /// Standard deviation of each exam's scores; higher = harder matching.
  double sigma = 5.0;
  uint64_t seed = 1;
};

struct GradesDataset {
  Database source;  // grades_narrow
  Database target;  // grades_wide
  GroundTruth truth;
};

/// Generates the data set.  Deterministic given options.seed.
GradesDataset MakeGradesDataset(const GradesOptions& options);

}  // namespace csm

#endif  // CSM_DATAGEN_GRADES_GEN_H_
