#include "datagen/grades_gen.h"

#include <set>

#include "common/logging.h"
#include "common/string_util.h"
#include "datagen/wordlists.h"

namespace csm {
namespace {

constexpr const char* kNarrowTable = "grades_narrow";
constexpr const char* kWideTable = "grades_wide";

/// Distinct student names; collisions get a numeric suffix.
std::vector<std::string> MakeStudentNames(size_t count, Rng& rng) {
  std::vector<std::string> names;
  std::set<std::string> seen;
  while (names.size() < count) {
    std::string name = MakePersonName(rng);
    if (!seen.insert(name).second) {
      name += StrFormat(" %zu", names.size());
      seen.insert(name);
    }
    names.push_back(std::move(name));
  }
  return names;
}

double ExamMean(size_t exam) {  // exam is 1-based
  return 40.0 + 10.0 * static_cast<double>(exam - 1);
}

double MakeGrade(size_t exam, double sigma, Rng& rng) {
  double grade = rng.NextGaussian(ExamMean(exam), sigma);
  // Scores live on a 0..100-ish scale; clamp and keep one decimal.
  grade = std::max(0.0, std::min(100.0, grade));
  return static_cast<double>(static_cast<int64_t>(grade * 10.0 + 0.5)) / 10.0;
}

}  // namespace

GradesDataset MakeGradesDataset(const GradesOptions& options) {
  CSM_CHECK_GE(options.num_exams, 1u);
  Rng rng(options.seed);
  GradesDataset out;

  // ---- Source: grades_narrow(name, examNum, grade) --------------------
  TableSchema narrow_schema(kNarrowTable);
  narrow_schema.AddAttribute("name", ValueType::kString);
  narrow_schema.AddAttribute("examNum", ValueType::kInt);
  narrow_schema.AddAttribute("grade", ValueType::kReal);

  Table narrow(narrow_schema);
  std::vector<std::string> source_names =
      MakeStudentNames(options.num_students, rng);
  for (const std::string& name : source_names) {
    for (size_t exam = 1; exam <= options.num_exams; ++exam) {
      Row row;
      row.push_back(Value::String(name));
      row.push_back(Value::Int(static_cast<int64_t>(exam)));
      row.push_back(Value::Real(MakeGrade(exam, options.sigma, rng)));
      narrow.AddRow(std::move(row));
    }
  }
  out.source = Database("source");
  out.source.AddTable(std::move(narrow));

  // ---- Target: grades_wide(name, grade1..gradeN) ----------------------
  TableSchema wide_schema(kWideTable);
  wide_schema.AddAttribute("name", ValueType::kString);
  for (size_t exam = 1; exam <= options.num_exams; ++exam) {
    wide_schema.AddAttribute(StrFormat("grade%zu", exam), ValueType::kReal);
  }
  Table wide(wide_schema);
  std::vector<std::string> target_names =
      MakeStudentNames(options.num_students, rng);
  for (const std::string& name : target_names) {
    Row row;
    row.push_back(Value::String(name));
    for (size_t exam = 1; exam <= options.num_exams; ++exam) {
      row.push_back(Value::Real(MakeGrade(exam, options.sigma, rng)));
    }
    wide.AddRow(std::move(row));
  }
  out.target = Database("target");
  out.target.AddTable(std::move(wide));

  // ---- Ground truth ----------------------------------------------------
  std::vector<Value> all_exams;
  for (size_t exam = 1; exam <= options.num_exams; ++exam) {
    all_exams.push_back(Value::Int(static_cast<int64_t>(exam)));
  }
  // name -> name is correct from any exam's view.
  out.truth.entries.push_back(TruthEntry{kNarrowTable, "name", kWideTable,
                                         "name", "examNum", all_exams});
  // grade -> grade_i only under examNum = i.
  for (size_t exam = 1; exam <= options.num_exams; ++exam) {
    out.truth.entries.push_back(
        TruthEntry{kNarrowTable, "grade", kWideTable,
                   StrFormat("grade%zu", exam), "examNum",
                   {Value::Int(static_cast<int64_t>(exam))}});
  }
  return out;
}

}  // namespace csm
