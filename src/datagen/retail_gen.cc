#include "datagen/retail_gen.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "datagen/wordlists.h"

namespace csm {
namespace {

constexpr const char* kSourceTable = "inventory";

/// Per-target-variant attribute names, in the fixed order:
/// id, title, creator, price, code, year.
struct TargetNames {
  const char* book_table;
  const char* music_table;
  const char* book_attrs[6];
  const char* music_attrs[6];
};

TargetNames NamesFor(RetailTarget target) {
  switch (target) {
    case RetailTarget::kRyanEyers:
      return TargetNames{
          "Book",
          "Music",
          {"BookID", "BookTitle", "Author", "ListPrice", "ISBN", "PubYear"},
          {"AlbumID", "AlbumName", "Artist", "Price", "UPC", "ReleaseYear"}};
    case RetailTarget::kAaronDay:
      return TargetNames{
          "books",
          "cds",
          {"book_id", "title", "writer", "cost", "isbn", "year_published"},
          {"cd_id", "album", "performer", "price", "upc", "release_year"}};
    case RetailTarget::kBarrettArney:
      return TargetNames{"book_inventory",
                         "music_inventory",
                         {"bk_id", "bk_title", "bk_author", "bk_price",
                          "bk_code", "bk_year"},
                         {"m_id", "m_title", "m_artist", "m_price", "m_code",
                          "m_year"}};
  }
  CSM_CHECK(false) << "unknown retail target";
  return {};
}

struct ItemFields {
  std::string title;
  std::string creator;
  double price;
  std::string code;
  int64_t year;
};

ItemFields MakeBook(Rng& rng) {
  ItemFields f;
  f.title = MakeBookTitle(rng);
  f.creator = MakePersonName(rng);
  f.price = 5.0 + rng.NextDouble() * 40.0;
  f.code = MakeIsbn(rng);
  f.year = rng.NextInt(1950, 2024);
  return f;
}

ItemFields MakeCd(Rng& rng) {
  ItemFields f;
  f.title = MakeAlbumTitle(rng);
  f.creator = MakeBandName(rng);
  f.price = 8.0 + rng.NextDouble() * 12.0;
  f.code = MakeUpc(rng);
  f.year = rng.NextInt(1950, 2024);
  return f;
}

double RoundPrice(double price) {
  return static_cast<double>(static_cast<int64_t>(price * 100.0 + 0.5)) /
         100.0;
}

}  // namespace

const char* RetailTargetToString(RetailTarget target) {
  switch (target) {
    case RetailTarget::kRyanEyers:
      return "Ryan_Eyers";
    case RetailTarget::kAaronDay:
      return "Aaron_Day";
    case RetailTarget::kBarrettArney:
      return "Barrett_Arney";
  }
  return "unknown";
}

RetailDataset MakeRetailDataset(const RetailOptions& options) {
  CSM_CHECK_GE(options.gamma, 2u);
  CSM_CHECK_EQ(options.gamma % 2, 0u) << "gamma must be even";
  Rng rng(options.seed);
  RetailDataset out;

  const size_t labels_per_kind = options.gamma / 2;
  for (size_t i = 1; i <= labels_per_kind; ++i) {
    out.book_labels.push_back(Value::String(StrFormat("Book%zu", i)));
    out.cd_labels.push_back(Value::String(StrFormat("CD%zu", i)));
  }
  std::vector<Value> all_labels = out.book_labels;
  all_labels.insert(all_labels.end(), out.cd_labels.begin(),
                    out.cd_labels.end());

  // ---- Source schema -------------------------------------------------
  TableSchema source_schema(kSourceTable);
  source_schema.AddAttribute("ItemID", ValueType::kInt);
  source_schema.AddAttribute("ItemType", ValueType::kString);
  source_schema.AddAttribute("Title", ValueType::kString);
  source_schema.AddAttribute("Creator", ValueType::kString);
  source_schema.AddAttribute("Price", ValueType::kReal);
  source_schema.AddAttribute("Code", ValueType::kString);
  source_schema.AddAttribute("PubYear", ValueType::kInt);
  source_schema.AddAttribute("StockStatus", ValueType::kString);
  for (size_t i = 1; i <= options.correlated_attributes; ++i) {
    source_schema.AddAttribute(StrFormat("CorrType%zu", i),
                               ValueType::kString);
  }
  for (size_t i = 1; i <= options.extra_categorical; ++i) {
    source_schema.AddAttribute(StrFormat("NoiseCat%zu", i),
                               ValueType::kString);
  }
  for (size_t i = 1; i <= options.extra_noncategorical; ++i) {
    source_schema.AddAttribute(StrFormat("Extra%zu", i), ValueType::kString);
  }

  static constexpr const char* kStockLevels[] = {"Low", "Normal", "High"};

  Table source_table(source_schema);
  for (size_t item = 0; item < options.num_items; ++item) {
    const bool is_book = rng.NextBernoulli(0.5);
    const Value& label =
        is_book ? out.book_labels[rng.NextBounded(out.book_labels.size())]
                : out.cd_labels[rng.NextBounded(out.cd_labels.size())];
    ItemFields fields = is_book ? MakeBook(rng) : MakeCd(rng);

    Row row;
    row.push_back(Value::Int(static_cast<int64_t>(10000 + item)));
    row.push_back(label);
    row.push_back(Value::String(fields.title));
    row.push_back(Value::String(fields.creator));
    row.push_back(Value::Real(RoundPrice(fields.price)));
    row.push_back(Value::String(fields.code));
    row.push_back(Value::Int(fields.year));
    row.push_back(Value::String(kStockLevels[rng.NextBounded(3)]));
    for (size_t i = 0; i < options.correlated_attributes; ++i) {
      if (rng.NextBernoulli(options.rho)) {
        row.push_back(label);
      } else {
        row.push_back(all_labels[rng.NextBounded(all_labels.size())]);
      }
    }
    for (size_t i = 0; i < options.extra_categorical; ++i) {
      row.push_back(all_labels[rng.NextBounded(all_labels.size())]);
    }
    for (size_t i = 0; i < options.extra_noncategorical; ++i) {
      row.push_back(Value::String(MakeRealEstateListing(rng)));
    }
    source_table.AddRow(std::move(row));
  }
  out.source = Database("source");
  out.source.AddTable(std::move(source_table));

  // ---- Target schema + data ------------------------------------------
  const TargetNames names = NamesFor(options.target);
  const size_t target_rows = options.target_rows_per_table > 0
                                 ? options.target_rows_per_table
                                 : std::max<size_t>(1, options.num_items / 2);

  auto make_target_table = [&](const char* table_name,
                               const char* const attrs[6], bool books) {
    TableSchema schema(table_name);
    schema.AddAttribute(attrs[0], ValueType::kInt);
    schema.AddAttribute(attrs[1], ValueType::kString);
    schema.AddAttribute(attrs[2], ValueType::kString);
    schema.AddAttribute(attrs[3], ValueType::kReal);
    schema.AddAttribute(attrs[4], ValueType::kString);
    schema.AddAttribute(attrs[5], ValueType::kInt);
    for (size_t i = 1; i <= options.extra_noncategorical; ++i) {
      schema.AddAttribute(StrFormat("%s_extra%zu", table_name, i),
                          ValueType::kString);
    }
    Table table(schema);
    for (size_t r = 0; r < target_rows; ++r) {
      ItemFields fields = books ? MakeBook(rng) : MakeCd(rng);
      Row row;
      row.push_back(Value::Int(static_cast<int64_t>(50000 + r)));
      row.push_back(Value::String(fields.title));
      row.push_back(Value::String(fields.creator));
      row.push_back(Value::Real(RoundPrice(fields.price)));
      row.push_back(Value::String(fields.code));
      row.push_back(Value::Int(fields.year));
      for (size_t i = 0; i < options.extra_noncategorical; ++i) {
        row.push_back(Value::String(MakeRealEstateListing(rng)));
      }
      table.AddRow(std::move(row));
    }
    return table;
  };

  out.target = Database("target");
  out.target.AddTable(make_target_table(names.book_table, names.book_attrs,
                                        /*books=*/true));
  out.target.AddTable(make_target_table(names.music_table, names.music_attrs,
                                        /*books=*/false));

  // ---- Ground truth ---------------------------------------------------
  // ItemID -> id pairs are excluded from the designated-correct set: the
  // ID ranges are disjoint surrogate keys with no instance-level signal, so
  // no instance-based matcher can (or should) pair them.
  static constexpr const char* kSourceAttrs[6] = {
      "ItemID", "Title", "Creator", "Price", "Code", "PubYear"};
  for (size_t i = 1; i < 6; ++i) {
    out.truth.entries.push_back(TruthEntry{
        kSourceTable, kSourceAttrs[i], names.book_table, names.book_attrs[i],
        "ItemType", out.book_labels});
    out.truth.entries.push_back(TruthEntry{
        kSourceTable, kSourceAttrs[i], names.music_table,
        names.music_attrs[i], "ItemType", out.cd_labels});
  }
  return out;
}

}  // namespace csm
