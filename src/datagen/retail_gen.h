// The Retail data set (Section 5, "Inventory Data").
//
// Source: a Colin_Bleckner-style combined inventory table whose ItemType
// column tags each row as a book or a CD, plus the StockStatus distractor
// the paper adds.  Targets: three student-schema variants (Ryan_Eyers,
// Aaron_Day, Barrett_Arney) that split books and music into separate
// tables.  All experiment knobs are exposed:
//   gamma                — cardinality of ItemType (Book1..Book_{g/2},
//                          CD1..CD_{g/2}); paper default 4
//   correlated/rho       — extra low-cardinality attributes correlated with
//                          ItemType (Section 5.3); matches on them are
//                          errors by definition
//   extra_noncategorical — schema-size expansion with real-estate noise on
//                          every table (Section 5.5)
//   extra_categorical    — extra ItemType-domain categorical attributes on
//                          the source (Section 5.5)
//   num_items            — sample size (Section 5.6)

#ifndef CSM_DATAGEN_RETAIL_GEN_H_
#define CSM_DATAGEN_RETAIL_GEN_H_

#include <cstdint>

#include "datagen/ground_truth.h"
#include "relational/table.h"

namespace csm {

/// Which student target schema to generate.
enum class RetailTarget {
  kRyanEyers,
  kAaronDay,
  kBarrettArney,
};

const char* RetailTargetToString(RetailTarget target);

struct RetailOptions {
  size_t num_items = 400;
  /// Total Book*/CD* labels; must be even and >= 2.
  size_t gamma = 4;
  /// Extra attributes sharing ItemType's domain, each copying ItemType's
  /// value with probability `rho` (uniform over the domain otherwise).
  size_t correlated_attributes = 0;
  double rho = 0.0;
  /// Schema-size expansion.
  size_t extra_noncategorical = 0;
  size_t extra_categorical = 0;
  /// Rows per target table (0 = num_items / 2 each).
  size_t target_rows_per_table = 0;
  RetailTarget target = RetailTarget::kRyanEyers;
  uint64_t seed = 1;
};

struct RetailDataset {
  Database source;
  Database target;
  GroundTruth truth;
  /// The ItemType values tagging books / CDs ("Book1", ...).
  std::vector<Value> book_labels;
  std::vector<Value> cd_labels;
};

/// Generates the data set.  Deterministic given options.seed.
RetailDataset MakeRetailDataset(const RetailOptions& options);

}  // namespace csm

#endif  // CSM_DATAGEN_RETAIL_GEN_H_
