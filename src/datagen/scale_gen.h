// Million-row instance generation for the scale path (DESIGN.md "Streaming
// ingest & sampling").
//
// The Section 5 generators (retail_gen, grades_gen) draw every row from one
// serial RNG stream, which is fine at 400 items but not at 10^7.  The scale
// generators here produce the same *shapes* — the retail inventory/Book/
// Music schemas with the Ryan_Eyers attribute names, and the grades
// narrow/wide pair — but generate rows in fixed-size chunks, each chunk
// seeded independently from (seed, table name, chunk index), so generation
// parallelizes over the exec pool and the output is bit-identical at every
// thread count.  Ground truth has the same entry structure as the small
// generators, so EvaluateMatches works unchanged.

#ifndef CSM_DATAGEN_SCALE_GEN_H_
#define CSM_DATAGEN_SCALE_GEN_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "datagen/grades_gen.h"
#include "datagen/retail_gen.h"

namespace csm {

namespace exec {
class ThreadPool;
}  // namespace exec

struct ScaleRetailOptions {
  /// Rows of the source inventory table (10^6..10^7 is the intended range).
  size_t source_rows = 1'000'000;
  /// Rows per target table (0 = source_rows / 2 each).
  size_t target_rows_per_table = 0;
  /// Total Book*/CD* labels; must be even and >= 2.
  size_t gamma = 4;
  uint64_t seed = 1;
  /// Generation workers; 0 = one per hardware thread, 1 = serial.
  size_t threads = 0;
  /// Optional borrowed pool (overrides `threads`).
  exec::ThreadPool* pool = nullptr;
  /// Rows generated per independently seeded chunk.  Part of the output's
  /// identity: changing it changes the (deterministic) instance.
  size_t rows_per_chunk = 65536;
};

struct ScaleGradesOptions {
  size_t num_students = 200'000;
  size_t num_exams = 5;
  double sigma = 5.0;
  uint64_t seed = 1;
  size_t threads = 0;
  exec::ThreadPool* pool = nullptr;
  /// Students generated per independently seeded chunk (the narrow table
  /// gets num_exams rows per student).
  size_t students_per_chunk = 65536;
};

/// Generates a scale retail instance (Ryan_Eyers target variant).
/// Deterministic given (options.seed, options.rows_per_chunk) at every
/// thread count.
RetailDataset MakeScaleRetailDataset(const ScaleRetailOptions& options);

/// Generates a scale grades instance.  Student names are made unique with a
/// "#<index>" suffix instead of the small generator's global collision set,
/// so chunks need no shared state.  Deterministic given (options.seed,
/// options.students_per_chunk) at every thread count.
GradesDataset MakeScaleGradesDataset(const ScaleGradesOptions& options);

/// Writes every table of `source` and `target` as "<dir>/<table>.csv" plus
/// a "<dir>/truth.tsv" listing the ground-truth entries (one per line:
/// source_table, source_attr, target_table, target_attr, label_attribute,
/// comma-joined allowed values — tab-separated).  `dir` must exist.
Status WriteScaleDatasetCsv(const Database& source, const Database& target,
                            const GroundTruth& truth, const std::string& dir);

}  // namespace csm

#endif  // CSM_DATAGEN_SCALE_GEN_H_
