#include "datagen/wordlists.h"

#include "common/string_util.h"

namespace csm {
namespace {

template <typename... Args>
std::vector<std::string_view> MakePool(Args... args) {
  return std::vector<std::string_view>{args...};
}

std::string_view Pick(const std::vector<std::string_view>& pool, Rng& rng) {
  return pool[rng.NextBounded(pool.size())];
}

}  // namespace

const std::vector<std::string_view>& BookTitleWords() {
  static const std::vector<std::string_view>* kPool =
      new std::vector<std::string_view>(MakePool(
          "silent", "river", "memory", "shadow", "garden", "winter",
          "daughter", "secret", "history", "light", "stone", "letter",
          "night", "summer", "house", "ocean", "forgotten", "kingdom",
          "journey", "truth", "promise", "empire", "glass", "paper", "wind",
          "mountain", "road", "crossing", "bridge", "orchard", "clock",
          "mirror", "thread", "salt", "honey", "ash", "ember", "lantern",
          "map", "compass", "harbor", "island", "storm", "quiet", "golden",
          "crimson", "hidden", "last", "first", "lost", "broken", "little",
          "great", "invisible", "burning", "sleeping", "wild", "distant",
          "hollow", "ancient"));
  return *kPool;
}

const std::vector<std::string_view>& BookSubjects() {
  static const std::vector<std::string_view>* kPool =
      new std::vector<std::string_view>(MakePool(
          "a novel", "stories", "a memoir", "poems", "an inquiry",
          "a biography", "essays", "a history", "a mystery", "a field guide",
          "collected works", "the complete guide"));
  return *kPool;
}

const std::vector<std::string_view>& FirstNames() {
  static const std::vector<std::string_view>* kPool =
      new std::vector<std::string_view>(MakePool(
          "Nora", "Elias", "Maya", "Theo", "Ivy", "Marcus", "Lena", "Oscar",
          "Ruth", "Felix", "Clara", "Hugo", "Alma", "Jonas", "Vera", "Silas",
          "June", "Abel", "Iris", "Ezra", "Wren", "Caleb", "Dina", "Rafael",
          "Sofia", "Anders", "Priya", "Kenji", "Amara", "Dmitri", "Leila",
          "Tomas", "Greta", "Omar", "Beatriz", "Yusuf", "Hanna", "Marco",
          "Ingrid", "Pavel", "Celine", "Arjun", "Noemi", "Stefan", "Talia",
          "Viktor", "Esme", "Lukas", "Zara", "Emil"));
  return *kPool;
}

const std::vector<std::string_view>& LastNames() {
  static const std::vector<std::string_view>* kPool =
      new std::vector<std::string_view>(MakePool(
          "Castellanos", "Whitfield", "Okafor", "Lindqvist", "Marchetti",
          "Donnelly", "Vasquez", "Hartmann", "Kowalski", "Abernathy",
          "Fitzgerald", "Nakamura", "Oyelaran", "Petrov", "Salinas",
          "Thackeray", "Ueda", "Vandermeer", "Winterbourne", "Xiong",
          "Yamamoto", "Zielinski", "Arquette", "Bellweather", "Crosby",
          "Delacroix", "Eastman", "Fontaine", "Galloway", "Holloway",
          "Ibrahim", "Jorgensen", "Kapoor", "Lombardi", "Moreau",
          "Nightingale", "Oliveira", "Pemberton", "Quintero", "Rosenthal",
          "Sorensen", "Tanaka", "Ulrich", "Villanueva", "Westergaard",
          "Yevtushenko", "Zambrano", "Ashworth", "Blackwood", "Covington"));
  return *kPool;
}

const std::vector<std::string_view>& BandNameWords() {
  static const std::vector<std::string_view>* kPool =
      new std::vector<std::string_view>(MakePool(
          "velvet", "thunder", "echo", "parade", "neon", "wolves", "static",
          "bloom", "cobalt", "drift", "ember", "foxfire", "glasshouse",
          "howl", "indigo", "jackal", "karma", "lunar", "mirage", "nova",
          "orbit", "pulse", "quartz", "riot", "saturn", "tremor", "ultra",
          "vandal", "wavelength", "zenith", "arcade", "ballad", "cascade",
          "dynamo", "electric", "fathom", "gravity", "horizon", "ivory",
          "jungle"));
  return *kPool;
}

const std::vector<std::string_view>& AlbumTitleWords() {
  static const std::vector<std::string_view>* kPool =
      new std::vector<std::string_view>(MakePool(
          "midnight", "sessions", "live", "unplugged", "remixed", "anthems",
          "basement", "tapes", "chrome", "dreams", "city", "lights",
          "afterglow", "bootleg", "chronicles", "diaries", "euphoria",
          "frequencies", "grooves", "headspace", "interstate", "jukebox",
          "kaleidoscope", "lowlands", "monsoon", "nocturne", "overdrive",
          "polaroid", "quicksand", "reverb", "skyline", "turbulence",
          "undertow", "voltage", "wanderlust", "xylograph", "yesterdays",
          "zephyr"));
  return *kPool;
}

const std::vector<std::string_view>& Publishers() {
  static const std::vector<std::string_view>* kPool =
      new std::vector<std::string_view>(MakePool(
          "Harborlight Press", "Quillstone Books", "Meridian House",
          "Fernwood & Sons", "Calloway Publishing", "Bluestem Press",
          "Arbor Lane Books", "Crestview Editions", "Silverbirch Press",
          "Old Mill Publishing", "Lanternfish Books", "Copper Canyon House",
          "Windrose Press", "Gable & Finch", "Hollowell Books",
          "Northlight Editions", "Paperbark Press", "Stonegate Publishing",
          "Tidewater Books", "Vellum House"));
  return *kPool;
}

const std::vector<std::string_view>& RecordLabels() {
  static const std::vector<std::string_view>* kPool =
      new std::vector<std::string_view>(MakePool(
          "Crater Records", "Bluewire Music", "Dashboard Sound",
          "Eleven:Eleven", "Foglight Records", "Gramophone Alley",
          "Honeycomb Audio", "Interval Records", "Junction Sound",
          "Kite String Music", "Loudhouse Records", "Mothership Sound",
          "Nightjar Records", "Octave & Co", "Parallel Lines Music",
          "Quasar Records", "Redbrick Audio", "Signal Path Records",
          "Turntable Union", "Umbra Music"));
  return *kPool;
}

const std::vector<std::string_view>& StreetNames() {
  static const std::vector<std::string_view>* kPool =
      new std::vector<std::string_view>(MakePool(
          "Maple Grove Ave", "Birchwood Ln", "Juniper Ct", "Sycamore Dr",
          "Willowbrook Rd", "Hawthorne St", "Cottonwood Pl", "Larchmont Way",
          "Chestnut Hollow", "Alder Creek Rd", "Poplar Ridge Dr",
          "Magnolia Ter", "Dogwood Cir", "Cypress Bend", "Elmhurst Ave",
          "Foxglove Ln", "Gingerwood Ct", "Heather Field Rd",
          "Ironwood Pass", "Kestrel Ridge"));
  return *kPool;
}

const std::vector<std::string_view>& CityNames() {
  static const std::vector<std::string_view>* kPool =
      new std::vector<std::string_view>(MakePool(
          "Cedar Falls", "Brookhaven", "Eastport", "Fairmont", "Glenwood",
          "Harper's Mill", "Kingsbridge", "Lakemore", "Midvale", "Northgate",
          "Oakhurst", "Pinecrest", "Quail Hollow", "Riverton", "Stonebrook",
          "Thornbury", "Union Grove", "Vista Heights", "Westfield",
          "Yarrow Bay"));
  return *kPool;
}

const std::vector<std::string_view>& RealEstateWords() {
  static const std::vector<std::string_view>* kPool =
      new std::vector<std::string_view>(MakePool(
          "charming", "spacious", "renovated", "sunlit", "cozy", "updated",
          "granite", "hardwood", "bungalow", "colonial", "ranch", "duplex",
          "acreage", "cul-de-sac", "fireplace", "vaulted", "walk-in",
          "fenced", "landscaped", "turnkey", "open-concept", "move-in",
          "stainless", "backyard", "garage", "basement", "porch", "deck"));
  return *kPool;
}

std::string MakeBookTitle(Rng& rng) {
  const auto& words = BookTitleWords();
  std::string title = "the";
  size_t count = 2 + rng.NextBounded(3);
  for (size_t i = 0; i < count; ++i) {
    title += " ";
    title += Pick(words, rng);
  }
  if (rng.NextBernoulli(0.35)) {
    title += ": ";
    title += Pick(BookSubjects(), rng);
  }
  return title;
}

std::string MakePersonName(Rng& rng) {
  std::string name(Pick(FirstNames(), rng));
  name += " ";
  name += Pick(LastNames(), rng);
  return name;
}

std::string MakeBandName(Rng& rng) {
  std::string name;
  if (rng.NextBernoulli(0.4)) name = "the ";
  name += Pick(BandNameWords(), rng);
  if (rng.NextBernoulli(0.6)) {
    name += " ";
    name += Pick(BandNameWords(), rng);
  }
  return name;
}

std::string MakeAlbumTitle(Rng& rng) {
  const auto& words = AlbumTitleWords();
  std::string title(Pick(words, rng));
  size_t extra = rng.NextBounded(3);
  for (size_t i = 0; i < extra; ++i) {
    title += " ";
    title += Pick(words, rng);
  }
  if (rng.NextBernoulli(0.15)) {
    title += StrFormat(" vol %d", static_cast<int>(1 + rng.NextBounded(3)));
  }
  return title;
}

std::string MakeIsbn(Rng& rng) {
  return StrFormat("%d-%04d-%04d-%d", static_cast<int>(rng.NextBounded(2)),
                   static_cast<int>(rng.NextBounded(10000)),
                   static_cast<int>(rng.NextBounded(10000)),
                   static_cast<int>(rng.NextBounded(10)));
}

std::string MakeUpc(Rng& rng) {
  std::string upc;
  for (int i = 0; i < 12; ++i) {
    upc += static_cast<char>('0' + rng.NextBounded(10));
  }
  return upc;
}

std::string MakeRealEstateListing(Rng& rng) {
  return StrFormat("%d %s, %s - %s %s",
                   static_cast<int>(100 + rng.NextBounded(9900)),
                   std::string(Pick(StreetNames(), rng)).c_str(),
                   std::string(Pick(CityNames(), rng)).c_str(),
                   std::string(Pick(RealEstateWords(), rng)).c_str(),
                   std::string(Pick(RealEstateWords(), rng)).c_str());
}

}  // namespace csm
