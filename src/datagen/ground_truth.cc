#include "datagen/ground_truth.h"

#include <algorithm>
#include <set>

namespace csm {
namespace {

/// The matching truth entry for a correct view match, or nullptr.
const TruthEntry* FindCorrectEntry(const GroundTruth& truth,
                                   const Match& match) {
  if (match.condition.is_true()) return nullptr;
  if (match.condition.NumAttributes() != 1) return nullptr;
  const ConditionClause& clause = match.condition.clauses()[0];
  for (const TruthEntry& entry : truth.entries) {
    if (entry.source_table != match.source.table ||
        entry.source_attribute != match.source.attribute ||
        entry.target_table != match.target.table ||
        entry.target_attribute != match.target.attribute) {
      continue;
    }
    if (clause.attribute != entry.label_attribute) continue;
    bool subset = true;
    for (const Value& value : clause.values) {
      if (std::find(entry.allowed_values.begin(), entry.allowed_values.end(),
                    value) == entry.allowed_values.end()) {
        subset = false;
        break;
      }
    }
    if (subset) return &entry;
  }
  return nullptr;
}

}  // namespace

std::string TruthEntry::ToString() const {
  std::string out = source_table + "." + source_attribute + " -> " +
                    target_table + "." + target_attribute + " [" +
                    label_attribute + " in {";
  for (size_t i = 0; i < allowed_values.size(); ++i) {
    if (i > 0) out += ", ";
    out += allowed_values[i].ToString();
  }
  out += "}]";
  return out;
}

bool IsCorrectMatch(const GroundTruth& truth, const Match& match) {
  return FindCorrectEntry(truth, match) != nullptr;
}

MatchQuality EvaluateMatches(const GroundTruth& truth,
                             const MatchList& matches) {
  MatchQuality quality;

  // Per-entry covered label values.
  std::vector<std::set<Value>> covered(truth.entries.size());

  for (const Match& match : matches) {
    if (match.condition.is_true()) continue;  // only view-origin edges count
    ++quality.view_matches;
    const TruthEntry* entry = FindCorrectEntry(truth, match);
    if (entry == nullptr) continue;
    ++quality.correct_matches;
    size_t index = static_cast<size_t>(entry - truth.entries.data());
    for (const Value& value : match.condition.clauses()[0].values) {
      covered[index].insert(value);
    }
  }

  if (!truth.entries.empty()) {
    double credit = 0.0;
    for (size_t i = 0; i < truth.entries.size(); ++i) {
      const size_t allowed = truth.entries[i].allowed_values.size();
      if (allowed == 0) continue;
      credit += static_cast<double>(covered[i].size()) /
                static_cast<double>(allowed);
    }
    quality.accuracy = credit / static_cast<double>(truth.entries.size());
  }
  if (quality.view_matches > 0) {
    quality.precision = static_cast<double>(quality.correct_matches) /
                        static_cast<double>(quality.view_matches);
  }
  if (quality.accuracy + quality.precision > 0.0) {
    quality.fmeasure = 2.0 * quality.accuracy * quality.precision /
                       (quality.accuracy + quality.precision);
  }
  return quality;
}

}  // namespace csm
