// Embedded word pools for the synthetic Retail and Grades workloads.
//
// The paper used data scraped from commercial web sites plus name data from
// the Illinois Semantic Integration Archive; we substitute generators over
// embedded pools that give books and CDs distinguishable lexical and
// numeric distributions (see DESIGN.md, Substitutions).

#ifndef CSM_DATAGEN_WORDLISTS_H_
#define CSM_DATAGEN_WORDLISTS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"

namespace csm {

/// Raw pools (exposed for tests).
const std::vector<std::string_view>& BookTitleWords();
const std::vector<std::string_view>& BookSubjects();
const std::vector<std::string_view>& FirstNames();
const std::vector<std::string_view>& LastNames();
const std::vector<std::string_view>& BandNameWords();
const std::vector<std::string_view>& AlbumTitleWords();
const std::vector<std::string_view>& Publishers();
const std::vector<std::string_view>& RecordLabels();
const std::vector<std::string_view>& StreetNames();
const std::vector<std::string_view>& CityNames();
const std::vector<std::string_view>& RealEstateWords();

/// "the silent river of memory" style book title (3-6 words).
std::string MakeBookTitle(Rng& rng);

/// "Nora Castellanos" author name.
std::string MakePersonName(Rng& rng);

/// "velvet thunder" / "the echo parade" band name.
std::string MakeBandName(Rng& rng);

/// "midnight静 sessions vol 2"-style album title (1-4 words, maybe vol N).
std::string MakeAlbumTitle(Rng& rng);

/// ISBN-10-shaped code "0-7432-7356-7".
std::string MakeIsbn(Rng& rng);

/// 12-digit UPC "724383959723".
std::string MakeUpc(Rng& rng);

/// "1420 Maple Grove Ave, Cedar Falls" real-estate address line.
std::string MakeRealEstateListing(Rng& rng);

}  // namespace csm

#endif  // CSM_DATAGEN_WORDLISTS_H_
