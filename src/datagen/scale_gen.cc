#include "datagen/scale_gen.h"

#include <filesystem>
#include <fstream>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "datagen/wordlists.h"
#include "exec/parallel.h"
#include "exec/thread_pool.h"
#include "relational/csv.h"
#include "relational/sample.h"

namespace csm {
namespace {

/// Seed of chunk `chunk` of stream `tag`: folds the tag and index into the
/// dataset seed so every chunk draws an independent reproducible stream
/// regardless of which worker generates it.
uint64_t ChunkSeed(uint64_t seed, const char* tag, size_t chunk) {
  return DeriveTableSampleSeed(seed, StrFormat("%s/%zu", tag, chunk));
}

/// Generates a table by independently seeded chunks on `pool` and merges
/// them in chunk order.  `fill(chunk_table, first_row, num_rows, rng)`
/// appends exactly `num_rows` rows.
template <typename Fill>
Table GenerateChunked(const TableSchema& schema, size_t total_rows,
                      size_t rows_per_chunk, uint64_t seed, const char* tag,
                      exec::ThreadPool* pool, const Fill& fill) {
  CSM_CHECK_GT(rows_per_chunk, 0u);
  const size_t num_chunks = (total_rows + rows_per_chunk - 1) / rows_per_chunk;
  std::vector<Table> chunks =
      exec::ParallelMap(pool, num_chunks, [&](size_t c) {
        const size_t first = c * rows_per_chunk;
        const size_t rows = std::min(rows_per_chunk, total_rows - first);
        Rng rng(ChunkSeed(seed, tag, c));
        Table chunk(schema);
        chunk.Reserve(rows);
        fill(&chunk, first, rows, rng);
        return chunk;
      });
  Table out(schema);
  out.Reserve(total_rows);
  for (const Table& chunk : chunks) out.AppendRowsFrom(chunk);
  return out;
}

/// Borrows options.pool, or spins up a private pool when the generation is
/// actually parallel (threads > 1 and more than one chunk of work).
struct PoolHandle {
  exec::ThreadPool* pool = nullptr;
  std::unique_ptr<exec::ThreadPool> owned;
};

PoolHandle ResolvePool(exec::ThreadPool* borrowed, size_t threads,
                       size_t num_chunks) {
  PoolHandle handle;
  if (borrowed != nullptr) {
    handle.pool = borrowed;
    return handle;
  }
  const size_t effective = exec::EffectiveThreads(threads);
  if (effective > 1 && num_chunks > 1) {
    handle.owned = std::make_unique<exec::ThreadPool>(effective);
    handle.pool = handle.owned.get();
  }
  return handle;
}

// Item field generation — same distributions as retail_gen.cc.
struct ItemFields {
  std::string title;
  std::string creator;
  double price;
  std::string code;
  int64_t year;
};

ItemFields MakeBook(Rng& rng) {
  ItemFields f;
  f.title = MakeBookTitle(rng);
  f.creator = MakePersonName(rng);
  f.price = 5.0 + rng.NextDouble() * 40.0;
  f.code = MakeIsbn(rng);
  f.year = rng.NextInt(1950, 2024);
  return f;
}

ItemFields MakeCd(Rng& rng) {
  ItemFields f;
  f.title = MakeAlbumTitle(rng);
  f.creator = MakeBandName(rng);
  f.price = 8.0 + rng.NextDouble() * 12.0;
  f.code = MakeUpc(rng);
  f.year = rng.NextInt(1950, 2024);
  return f;
}

double RoundPrice(double price) {
  return static_cast<double>(static_cast<int64_t>(price * 100.0 + 0.5)) /
         100.0;
}

double MakeGrade(size_t exam, double sigma, Rng& rng) {
  double grade =
      rng.NextGaussian(40.0 + 10.0 * static_cast<double>(exam - 1), sigma);
  grade = std::max(0.0, std::min(100.0, grade));
  return static_cast<double>(static_cast<int64_t>(grade * 10.0 + 0.5)) / 10.0;
}

}  // namespace

RetailDataset MakeScaleRetailDataset(const ScaleRetailOptions& options) {
  CSM_CHECK_GE(options.gamma, 2u);
  CSM_CHECK_EQ(options.gamma % 2, 0u) << "gamma must be even";
  RetailDataset out;

  const size_t labels_per_kind = options.gamma / 2;
  for (size_t i = 1; i <= labels_per_kind; ++i) {
    out.book_labels.push_back(Value::String(StrFormat("Book%zu", i)));
    out.cd_labels.push_back(Value::String(StrFormat("CD%zu", i)));
  }

  const size_t target_rows = options.target_rows_per_table > 0
                                 ? options.target_rows_per_table
                                 : std::max<size_t>(1, options.source_rows / 2);
  const size_t source_chunks =
      (options.source_rows + options.rows_per_chunk - 1) /
      options.rows_per_chunk;
  PoolHandle pool =
      ResolvePool(options.pool, options.threads, source_chunks);

  // ---- Source: inventory ----------------------------------------------
  TableSchema source_schema("inventory");
  source_schema.AddAttribute("ItemID", ValueType::kInt);
  source_schema.AddAttribute("ItemType", ValueType::kString);
  source_schema.AddAttribute("Title", ValueType::kString);
  source_schema.AddAttribute("Creator", ValueType::kString);
  source_schema.AddAttribute("Price", ValueType::kReal);
  source_schema.AddAttribute("Code", ValueType::kString);
  source_schema.AddAttribute("PubYear", ValueType::kInt);
  source_schema.AddAttribute("StockStatus", ValueType::kString);

  static constexpr const char* kStockLevels[] = {"Low", "Normal", "High"};

  Table source_table = GenerateChunked(
      source_schema, options.source_rows, options.rows_per_chunk,
      options.seed, "inventory", pool.pool,
      [&](Table* chunk, size_t first, size_t rows, Rng& rng) {
        for (size_t r = 0; r < rows; ++r) {
          const bool is_book = rng.NextBernoulli(0.5);
          const Value& label =
              is_book
                  ? out.book_labels[rng.NextBounded(out.book_labels.size())]
                  : out.cd_labels[rng.NextBounded(out.cd_labels.size())];
          ItemFields fields = is_book ? MakeBook(rng) : MakeCd(rng);
          Row row;
          row.push_back(Value::Int(static_cast<int64_t>(10000 + first + r)));
          row.push_back(label);
          row.push_back(Value::String(fields.title));
          row.push_back(Value::String(fields.creator));
          row.push_back(Value::Real(RoundPrice(fields.price)));
          row.push_back(Value::String(fields.code));
          row.push_back(Value::Int(fields.year));
          row.push_back(Value::String(kStockLevels[rng.NextBounded(3)]));
          chunk->AddRow(std::move(row));
        }
      });
  out.source = Database("source");
  out.source.AddTable(std::move(source_table));

  // ---- Targets: Book / Music (Ryan_Eyers names) ------------------------
  auto make_target = [&](const char* table_name,
                         const char* const attrs[6], bool books) {
    TableSchema schema(table_name);
    schema.AddAttribute(attrs[0], ValueType::kInt);
    schema.AddAttribute(attrs[1], ValueType::kString);
    schema.AddAttribute(attrs[2], ValueType::kString);
    schema.AddAttribute(attrs[3], ValueType::kReal);
    schema.AddAttribute(attrs[4], ValueType::kString);
    schema.AddAttribute(attrs[5], ValueType::kInt);
    return GenerateChunked(
        schema, target_rows, options.rows_per_chunk, options.seed, table_name,
        pool.pool, [&](Table* chunk, size_t first, size_t rows, Rng& rng) {
          for (size_t r = 0; r < rows; ++r) {
            ItemFields fields = books ? MakeBook(rng) : MakeCd(rng);
            Row row;
            row.push_back(
                Value::Int(static_cast<int64_t>(50000 + first + r)));
            row.push_back(Value::String(fields.title));
            row.push_back(Value::String(fields.creator));
            row.push_back(Value::Real(RoundPrice(fields.price)));
            row.push_back(Value::String(fields.code));
            row.push_back(Value::Int(fields.year));
            chunk->AddRow(std::move(row));
          }
        });
  };

  static constexpr const char* kBookAttrs[6] = {
      "BookID", "BookTitle", "Author", "ListPrice", "ISBN", "PubYear"};
  static constexpr const char* kMusicAttrs[6] = {
      "AlbumID", "AlbumName", "Artist", "Price", "UPC", "ReleaseYear"};
  out.target = Database("target");
  out.target.AddTable(make_target("Book", kBookAttrs, /*books=*/true));
  out.target.AddTable(make_target("Music", kMusicAttrs, /*books=*/false));

  // ---- Ground truth (same structure as retail_gen) ---------------------
  static constexpr const char* kSourceAttrs[6] = {
      "ItemID", "Title", "Creator", "Price", "Code", "PubYear"};
  for (size_t i = 1; i < 6; ++i) {
    out.truth.entries.push_back(TruthEntry{"inventory", kSourceAttrs[i],
                                           "Book", kBookAttrs[i], "ItemType",
                                           out.book_labels});
    out.truth.entries.push_back(TruthEntry{"inventory", kSourceAttrs[i],
                                           "Music", kMusicAttrs[i],
                                           "ItemType", out.cd_labels});
  }
  return out;
}

GradesDataset MakeScaleGradesDataset(const ScaleGradesOptions& options) {
  CSM_CHECK_GE(options.num_exams, 1u);
  GradesDataset out;

  const size_t student_chunks =
      (options.num_students + options.students_per_chunk - 1) /
      options.students_per_chunk;
  PoolHandle pool =
      ResolvePool(options.pool, options.threads, student_chunks);

  // Unique without a global collision set: every chunk can mint names
  // independently because the global student index is part of the name.
  auto student_name = [](size_t index, Rng& rng) {
    return StrFormat("%s #%zu", MakePersonName(rng).c_str(), index);
  };

  // ---- Source: grades_narrow ------------------------------------------
  TableSchema narrow_schema("grades_narrow");
  narrow_schema.AddAttribute("name", ValueType::kString);
  narrow_schema.AddAttribute("examNum", ValueType::kInt);
  narrow_schema.AddAttribute("grade", ValueType::kReal);

  // Chunk unit = one student (num_exams rows), so a chunk's row count is
  // students_in_chunk * num_exams.
  const size_t narrow_chunk_rows =
      options.students_per_chunk * options.num_exams;
  Table narrow = GenerateChunked(
      narrow_schema, options.num_students * options.num_exams,
      narrow_chunk_rows, options.seed, "grades_narrow", pool.pool,
      [&](Table* chunk, size_t first_row, size_t rows, Rng& rng) {
        const size_t first_student = first_row / options.num_exams;
        const size_t students = rows / options.num_exams;
        for (size_t s = 0; s < students; ++s) {
          const std::string name = student_name(first_student + s, rng);
          for (size_t exam = 1; exam <= options.num_exams; ++exam) {
            Row row;
            row.push_back(Value::String(name));
            row.push_back(Value::Int(static_cast<int64_t>(exam)));
            row.push_back(Value::Real(MakeGrade(exam, options.sigma, rng)));
            chunk->AddRow(std::move(row));
          }
        }
      });
  out.source = Database("source");
  out.source.AddTable(std::move(narrow));

  // ---- Target: grades_wide --------------------------------------------
  TableSchema wide_schema("grades_wide");
  wide_schema.AddAttribute("name", ValueType::kString);
  for (size_t exam = 1; exam <= options.num_exams; ++exam) {
    wide_schema.AddAttribute(StrFormat("grade%zu", exam), ValueType::kReal);
  }
  Table wide = GenerateChunked(
      wide_schema, options.num_students, options.students_per_chunk,
      options.seed, "grades_wide", pool.pool,
      [&](Table* chunk, size_t first, size_t rows, Rng& rng) {
        for (size_t s = 0; s < rows; ++s) {
          Row row;
          row.push_back(Value::String(student_name(first + s, rng)));
          for (size_t exam = 1; exam <= options.num_exams; ++exam) {
            row.push_back(Value::Real(MakeGrade(exam, options.sigma, rng)));
          }
          chunk->AddRow(std::move(row));
        }
      });
  out.target = Database("target");
  out.target.AddTable(std::move(wide));

  // ---- Ground truth (same structure as grades_gen) ---------------------
  std::vector<Value> all_exams;
  for (size_t exam = 1; exam <= options.num_exams; ++exam) {
    all_exams.push_back(Value::Int(static_cast<int64_t>(exam)));
  }
  out.truth.entries.push_back(TruthEntry{"grades_narrow", "name",
                                         "grades_wide", "name", "examNum",
                                         all_exams});
  for (size_t exam = 1; exam <= options.num_exams; ++exam) {
    out.truth.entries.push_back(
        TruthEntry{"grades_narrow", "grade", "grades_wide",
                   StrFormat("grade%zu", exam), "examNum",
                   {Value::Int(static_cast<int64_t>(exam))}});
  }
  return out;
}

Status WriteScaleDatasetCsv(const Database& source, const Database& target,
                            const GroundTruth& truth,
                            const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create directory: " + dir + ": " +
                           ec.message());
  }
  for (const Database* db : {&source, &target}) {
    for (const Table& table : db->tables()) {
      CSM_RETURN_IF_ERROR(
          WriteCsvFile(table, dir + "/" + table.name() + ".csv"));
    }
  }
  std::ofstream truth_out(dir + "/truth.tsv", std::ios::binary);
  if (!truth_out) {
    return Status::IoError("cannot open for write: " + dir + "/truth.tsv");
  }
  for (const TruthEntry& entry : truth.entries) {
    truth_out << entry.source_table << '\t' << entry.source_attribute << '\t'
              << entry.target_table << '\t' << entry.target_attribute << '\t'
              << entry.label_attribute << '\t';
    for (size_t i = 0; i < entry.allowed_values.size(); ++i) {
      if (i > 0) truth_out << ',';
      truth_out << entry.allowed_values[i].ToString();
    }
    truth_out << '\n';
  }
  if (!truth_out) return Status::IoError("write failed: " + dir + "/truth.tsv");
  return Status::Ok();
}

}  // namespace csm
