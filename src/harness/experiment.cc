#include "harness/experiment.h"

#include <cstdlib>

namespace csm {

double AggregatedMetrics::Mean(const std::string& name) const {
  auto it = metrics.find(name);
  return it == metrics.end() ? 0.0 : it->second.Mean();
}

double AggregatedMetrics::StdDev(const std::string& name) const {
  auto it = metrics.find(name);
  return it == metrics.end() ? 0.0 : it->second.SampleStdDev();
}

AggregatedMetrics RunRepeated(
    size_t repetitions, uint64_t base_seed,
    const std::function<MetricMap(uint64_t seed)>& trial) {
  AggregatedMetrics out;
  for (size_t rep = 0; rep < repetitions; ++rep) {
    Stopwatch watch;
    MetricMap metrics = trial(base_seed + rep + 1);
    double seconds = watch.Seconds();
    for (const auto& [name, value] : metrics) {
      out.metrics[name].Add(value);
    }
    out.metrics["seconds"].Add(seconds);
  }
  return out;
}

namespace {

/// Parses a non-negative size knob; `min` rejects values below it (so REPS
/// treats 0 as unset while THREADS keeps it as "all hardware threads").
bool ReadSizeEnv(const char* name, long min, size_t* out) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return false;
  char* end = nullptr;
  long parsed = std::strtol(env, &end, 10);
  if (end == env || parsed < min) return false;
  *out = static_cast<size_t>(parsed);
  return true;
}

}  // namespace

BenchConfig BenchConfig::FromEnv() {
  BenchConfig config;
  ReadSizeEnv("CSM_BENCH_REPS", /*min=*/1, &config.reps);
  config.threads_set = ReadSizeEnv("CSM_BENCH_THREADS", /*min=*/0,
                                   &config.threads);
  const char* trace = std::getenv("CSM_BENCH_TRACE");
  if (trace != nullptr) config.trace_prefix = trace;
  ReadSizeEnv("CSM_BENCH_CLIENTS", /*min=*/1, &config.clients);
  ReadSizeEnv("CSM_BENCH_REQUESTS", /*min=*/1, &config.requests);
  ReadSizeEnv("CSM_BENCH_SCALE_ROWS", /*min=*/1, &config.scale_rows);
  const char* force = std::getenv("CSM_BENCH_FORCE");
  config.force = force != nullptr && *force != '\0' && *force != '0';
  return config;
}

const BenchConfig& GlobalBenchConfig() {
  static const BenchConfig config = BenchConfig::FromEnv();
  return config;
}

}  // namespace csm
