#include "harness/experiment.h"

#include <cstdlib>

namespace csm {

double AggregatedMetrics::Mean(const std::string& name) const {
  auto it = metrics.find(name);
  return it == metrics.end() ? 0.0 : it->second.Mean();
}

double AggregatedMetrics::StdDev(const std::string& name) const {
  auto it = metrics.find(name);
  return it == metrics.end() ? 0.0 : it->second.SampleStdDev();
}

AggregatedMetrics RunRepeated(
    size_t repetitions, uint64_t base_seed,
    const std::function<MetricMap(uint64_t seed)>& trial) {
  AggregatedMetrics out;
  for (size_t rep = 0; rep < repetitions; ++rep) {
    Stopwatch watch;
    MetricMap metrics = trial(base_seed + rep + 1);
    double seconds = watch.Seconds();
    for (const auto& [name, value] : metrics) {
      out.metrics[name].Add(value);
    }
    out.metrics["seconds"].Add(seconds);
  }
  return out;
}

size_t BenchRepetitions(size_t default_reps) {
  const char* env = std::getenv("CSM_BENCH_REPS");
  if (env != nullptr) {
    long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return default_reps;
}

size_t BenchThreads(size_t default_threads) {
  const char* env = std::getenv("CSM_BENCH_THREADS");
  if (env != nullptr) {
    long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 0) return static_cast<size_t>(parsed);
  }
  return default_threads;
}

}  // namespace csm
