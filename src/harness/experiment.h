// Repetition/averaging helpers for the experiment benches: the paper runs
// "between 8 and 200 random partitions of the sample data" per data point
// and averages; RunRepeated does the same over derived seeds.

#ifndef CSM_HARNESS_EXPERIMENT_H_
#define CSM_HARNESS_EXPERIMENT_H_

#include <chrono>
#include <functional>
#include <map>
#include <string>

#include "stats/descriptive.h"

namespace csm {

/// Named metrics produced by one trial.
using MetricMap = std::map<std::string, double>;

/// Aggregated metrics over repetitions.
struct AggregatedMetrics {
  std::map<std::string, DescriptiveStats> metrics;

  double Mean(const std::string& name) const;
  double StdDev(const std::string& name) const;
  bool Has(const std::string& name) const {
    return metrics.find(name) != metrics.end();
  }
};

/// Runs `trial` `repetitions` times with seeds base_seed+1 ... and merges
/// the metric maps.  The trial's wall-clock seconds are recorded under
/// "seconds" (in addition to any metrics the trial reports).
AggregatedMetrics RunRepeated(size_t repetitions, uint64_t base_seed,
                              const std::function<MetricMap(uint64_t seed)>& trial);

/// Simple wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Every CSM_BENCH_* environment knob, read once.  Bench binaries share
/// this one struct instead of scattering getenv calls: a knob unset in the
/// environment leaves the bench's own default in force (the accessors take
/// that default), so `bench_x` and `CSM_BENCH_REPS=2 bench_x` differ only
/// in the overridden knob.
struct BenchConfig {
  /// CSM_BENCH_REPS: repetitions per data point (0 = bench default).
  size_t reps = 0;
  /// CSM_BENCH_THREADS: engine worker threads; distinguishes "unset" from
  /// an explicit 0 (= all hardware threads).  Results are identical at any
  /// value.
  bool threads_set = false;
  size_t threads = 0;
  /// CSM_BENCH_TRACE: Chrome-trace filename prefix; empty = tracing off.
  std::string trace_prefix;
  /// CSM_BENCH_CLIENTS / CSM_BENCH_REQUESTS: load-generator shape for
  /// bench_service_load (0 = bench default).
  size_t clients = 0;
  size_t requests = 0;
  /// CSM_BENCH_SCALE_ROWS: source rows for bench_scale_sweep (0 = bench
  /// default).
  size_t scale_rows = 0;
  /// CSM_BENCH_FORCE: overrides the speedup-record overwrite guard (a
  /// record from a machine with more cores is otherwise never replaced by
  /// a run from a smaller machine).
  bool force = false;

  /// Reads the environment; never fails (malformed values = unset).
  static BenchConfig FromEnv();

  size_t Repetitions(size_t default_reps) const {
    return reps > 0 ? reps : default_reps;
  }
  size_t Threads(size_t default_threads) const {
    return threads_set ? threads : default_threads;
  }
  /// Null when tracing is off (mirrors the old BenchTracePrefix helper).
  const char* TracePrefix() const {
    return trace_prefix.empty() ? nullptr : trace_prefix.c_str();
  }
};

/// The process-wide BenchConfig, read from the environment on first use.
const BenchConfig& GlobalBenchConfig();

}  // namespace csm

#endif  // CSM_HARNESS_EXPERIMENT_H_
