// Repetition/averaging helpers for the experiment benches: the paper runs
// "between 8 and 200 random partitions of the sample data" per data point
// and averages; RunRepeated does the same over derived seeds.

#ifndef CSM_HARNESS_EXPERIMENT_H_
#define CSM_HARNESS_EXPERIMENT_H_

#include <chrono>
#include <functional>
#include <map>
#include <string>

#include "stats/descriptive.h"

namespace csm {

/// Named metrics produced by one trial.
using MetricMap = std::map<std::string, double>;

/// Aggregated metrics over repetitions.
struct AggregatedMetrics {
  std::map<std::string, DescriptiveStats> metrics;

  double Mean(const std::string& name) const;
  double StdDev(const std::string& name) const;
  bool Has(const std::string& name) const {
    return metrics.find(name) != metrics.end();
  }
};

/// Runs `trial` `repetitions` times with seeds base_seed+1 ... and merges
/// the metric maps.  The trial's wall-clock seconds are recorded under
/// "seconds" (in addition to any metrics the trial reports).
AggregatedMetrics RunRepeated(size_t repetitions, uint64_t base_seed,
                              const std::function<MetricMap(uint64_t seed)>& trial);

/// Simple wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Number of repetitions the benches use; override with CSM_BENCH_REPS to
/// trade precision for speed.
size_t BenchRepetitions(size_t default_reps);

/// Worker threads the benches run ContextMatch with; override with
/// CSM_BENCH_THREADS (0 = all hardware threads — see
/// ContextMatchOptions::threads).  Results are identical at any value.
size_t BenchThreads(size_t default_threads);

}  // namespace csm

#endif  // CSM_HARNESS_EXPERIMENT_H_
