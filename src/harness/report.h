// Aligned-table / CSV reporting for the experiment benches: every bench
// prints one ResultTable whose rows are the series of the paper figure it
// regenerates.

#ifndef CSM_HARNESS_REPORT_H_
#define CSM_HARNESS_REPORT_H_

#include <string>
#include <vector>

namespace csm {

class ResultTable {
 public:
  ResultTable(std::string title, std::vector<std::string> columns);

  const std::string& title() const { return title_; }

  void AddRow(std::vector<std::string> cells);

  /// Formats a double with 3 decimals (convenience for AddRow).
  static std::string Num(double value);
  static std::string Num(double value, int decimals);

  /// Column-aligned plain-text rendering with the title banner.
  std::string ToString() const;

  /// CSV rendering (header + rows, no title).
  std::string ToCsv() const;

  /// Prints ToString() to stdout.
  void Print() const;

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }
  const std::vector<std::string>& columns() const { return columns_; }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace csm

#endif  // CSM_HARNESS_REPORT_H_
