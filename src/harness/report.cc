#include "harness/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace csm {

ResultTable::ResultTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  CSM_CHECK(!columns_.empty());
}

void ResultTable::AddRow(std::vector<std::string> cells) {
  CSM_CHECK_EQ(cells.size(), columns_.size());
  rows_.push_back(std::move(cells));
}

std::string ResultTable::Num(double value) { return Num(value, 3); }

std::string ResultTable::Num(double value, int decimals) {
  return StrFormat("%.*f", decimals, value);
}

std::string ResultTable::ToString() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << cells[c] << std::string(widths[c] - cells[c].size() + 2, ' ');
    }
    os << "\n";
  };
  emit_row(columns_);
  std::string rule;
  for (size_t c = 0; c < columns_.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  os << rule << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string ResultTable::ToCsv() const {
  std::ostringstream os;
  os << Join(columns_, ",") << "\n";
  for (const auto& row : rows_) os << Join(row, ",") << "\n";
  return os.str();
}

void ResultTable::Print() const {
  std::fputs(ToString().c_str(), stdout);
  std::fputs("\n", stdout);
  std::fflush(stdout);
}

}  // namespace csm
