#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace csm {
namespace obs {
namespace {

/// Innermost open span of the calling thread (across all tracers; spans of
/// distinct tracers must not interleave on one thread).
thread_local uint64_t tls_current_span = 0;

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void Tracer::Record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      thread_indices_.emplace(std::this_thread::get_id(), thread_indices_.size());
  record.thread_index = it->second;
  spans_.push_back(std::move(record));
}

size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

double Tracer::RootSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  for (const SpanRecord& span : spans_) {
    if (span.parent == 0) total += span.duration_seconds;
  }
  return total;
}

std::string Tracer::ToChromeTraceJson() const {
  std::vector<SpanRecord> spans = Snapshot();
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_seconds < b.start_seconds;
            });
  std::string out = "{\"traceEvents\": [\n";
  char buf[160];
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    std::snprintf(buf, sizeof(buf),
                  "\"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, "
                  "\"tid\": %zu, \"args\": {\"span_id\": %llu, "
                  "\"parent_id\": %llu}}%s",
                  s.start_seconds * 1e6, s.duration_seconds * 1e6,
                  s.thread_index, static_cast<unsigned long long>(s.id),
                  static_cast<unsigned long long>(s.parent),
                  i + 1 < spans.size() ? "," : "");
    out += "{\"name\": \"" + JsonEscape(s.name) + "\", \"cat\": \"csm\", ";
    out += buf;
    out += "\n";
  }
  out += "]}\n";
  return out;
}

std::string Tracer::ToTextTree() const {
  std::vector<SpanRecord> spans = Snapshot();
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_seconds != b.start_seconds) {
                return a.start_seconds < b.start_seconds;
              }
              return a.id < b.id;
            });
  // children[parent id] -> indices into `spans`, already in start order.
  std::map<uint64_t, std::vector<size_t>> children;
  std::map<uint64_t, bool> known;
  for (const SpanRecord& span : spans) known[span.id] = true;
  for (size_t i = 0; i < spans.size(); ++i) {
    // Spans whose parent was never recorded (e.g. still open at export)
    // print as roots rather than vanishing.
    const uint64_t parent = known.count(spans[i].parent) ? spans[i].parent : 0;
    children[parent].push_back(i);
  }

  std::string out;
  char buf[64];
  // Iterative DFS from the root list, preserving start order.
  struct Frame {
    size_t index;
    size_t depth;
  };
  std::vector<Frame> stack;
  const auto& roots = children[0];
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.push_back(Frame{*it, 0});
  }
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    const SpanRecord& span = spans[frame.index];
    std::snprintf(buf, sizeof(buf), "%10.6fs  [tid %zu]  ",
                  span.duration_seconds, span.thread_index);
    out += buf;
    out.append(2 * frame.depth, ' ');
    out += span.name;
    out += "\n";
    auto it = children.find(span.id);
    if (it != children.end()) {
      for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
        stack.push_back(Frame{*rit, frame.depth + 1});
      }
    }
  }
  return out;
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  const std::string json = ToChromeTraceJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), out) == json.size();
  return std::fclose(out) == 0 && ok;
}

uint64_t Tracer::CurrentSpan() { return tls_current_span; }

ScopedSpan::ScopedSpan(Tracer* tracer, std::string_view name, uint64_t parent)
    : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  name_ = std::string(name);
  id_ = tracer_->NextId();
  parent_ = parent;
  saved_current_ = tls_current_span;
  tls_current_span = id_;
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  const auto end = std::chrono::steady_clock::now();
  tls_current_span = saved_current_;
  SpanRecord record;
  record.id = id_;
  record.parent = parent_;
  record.name = std::move(name_);
  record.start_seconds =
      std::chrono::duration<double>(start_ - tracer_->epoch()).count();
  record.duration_seconds = std::chrono::duration<double>(end - start_).count();
  tracer_->Record(std::move(record));
}

}  // namespace obs
}  // namespace csm
