// MetricsRegistry: named counters, gauges, phase wall-clock accumulators
// and fixed-bucket latency histograms with p50/p95/p99 summaries.  The
// registry is the single bookkeeping system behind ContextMatch's
// PhaseReport, the thread pool's queue/latency signals and the bench JSON
// summaries; exec::PhaseStats is a thin view over it.
//
// Thread safety: every mutating and reading method may be called
// concurrently (one registry mutex; each operation is a map lookup plus an
// O(1) update, so the lock is held for nanoseconds).  Recording is
// deliberately allocation-light — histogram buckets are fixed arrays — so
// workers of the PR 1 thread pool can report without measurable skew.

#ifndef CSM_OBS_METRICS_H_
#define CSM_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace csm {
namespace obs {

/// Plain-value summary of one histogram: exact count/sum/min/max plus
/// bucket-interpolated quantiles.
struct HistogramSummary {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  double Mean() const { return count == 0 ? 0.0 : sum / count; }
};

/// Fixed-bucket histogram tuned for latencies in seconds: log-spaced
/// (factor-2) bucket boundaries from 100ns to ~10^4 s, plus an overflow
/// bucket.  Quantiles interpolate linearly inside the winning bucket and
/// are clamped to the exact observed [min, max].  Not internally
/// synchronized — MetricsRegistry guards it.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 38;

  void Observe(double value);
  void MergeFrom(const Histogram& other);

  uint64_t count() const { return count_; }
  HistogramSummary Summary() const;

  /// Upper bound of bucket `b` (the last bucket is unbounded and reports
  /// the observed max).
  static double BucketBound(size_t b);

 private:
  double Quantile(double q) const;

  std::array<uint64_t, kNumBuckets + 1> buckets_{};  // +1 = overflow
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Snapshot of a registry: the observability payload embedded in result
/// structs (ContextMatchResult::phases).  `seconds` holds the pipeline
/// phase wall-clock totals ("standard_match", "inference", "scoring",
/// "selection", ...), `counters` the work-volume counts, `histograms` the
/// per-unit latency distributions.
struct PhaseReport {
  std::map<std::string, double> seconds;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;

  /// 0 / zero-summary when the name was never recorded.
  double Seconds(const std::string& name) const;
  uint64_t Count(const std::string& name) const;
  double Gauge(const std::string& name) const;
  HistogramSummary Histogram(const std::string& name) const;

  /// Sum of all phase seconds (for ContextMatch: the four pipeline phases,
  /// preserving the old standard+inference+scoring+selection total).
  double TotalSeconds() const;

  /// Sorted "name: value" lines, one section per metric kind.
  std::string ToString() const;
  /// JSON object {"seconds": {...}, "counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, min, max, p50, p95, p99}}}.
  std::string ToJson() const;
};

/// The registry proper.  All methods are safe to call concurrently.
class MetricsRegistry {
 public:
  /// Phase wall-clock accumulators (the PhaseReport `seconds` section).
  void AddSeconds(const std::string& phase, double seconds);
  double Seconds(const std::string& phase) const;

  /// Monotonic event counters.
  void AddCounter(const std::string& name, uint64_t n = 1);
  uint64_t Counter(const std::string& name) const;

  /// Last-value / accumulating gauges.
  void SetGauge(const std::string& name, double value);
  void AddGauge(const std::string& name, double delta);
  double Gauge(const std::string& name) const;

  /// Histogram observation (seconds or any non-negative value).
  void Observe(const std::string& name, double value);
  HistogramSummary Summary(const std::string& name) const;

  /// Plain-value snapshot of everything.
  PhaseReport Snapshot() const;

  /// Folds `other`'s contents into this registry: counters/seconds add,
  /// gauges take `other`'s value, histograms merge bucket-wise.  Used to
  /// drain a per-call registry into a long-lived external sink.
  void MergeFrom(const MetricsRegistry& other);

  std::string ToString() const { return Snapshot().ToString(); }
  std::string ToJson() const { return Snapshot().ToJson(); }

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> seconds_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace obs
}  // namespace csm

#endif  // CSM_OBS_METRICS_H_
