// Hierarchical tracing: RAII spans with thread-id and parent-span
// attribution, exportable as Chrome trace-event JSON (load in
// chrome://tracing or https://ui.perfetto.dev) and as a sorted text tree.
//
// Usage:
//   obs::Tracer tracer;
//   {
//     obs::ScopedSpan root(&tracer, "ContextMatch");
//     {
//       obs::ScopedSpan phase(&tracer, "scoring");   // parent = root
//       pool tasks: obs::ScopedSpan s(&tracer, "score_view", phase.id());
//     }
//   }
//   tracer.WriteChromeTrace("trace.json");
//
// Parent attribution: within one thread, ScopedSpan maintains a
// thread-local current-span id, so nested scopes parent automatically.
// Across threads (work handed to a pool worker) the spawning span's id is
// passed explicitly — the worker's thread-local state belongs to a
// different call stack.
//
// Overhead: a null tracer makes ScopedSpan a no-op (two pointer checks).
// With a tracer attached, a span costs one atomic increment at open and
// one mutex-guarded vector append at close; nothing is serialized until
// export.  Recording never blocks on I/O.

#ifndef CSM_OBS_TRACE_H_
#define CSM_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace csm {
namespace obs {

/// One completed span.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent = 0;  // 0 = root
  std::string name;
  size_t thread_index = 0;  // dense per-tracer thread numbering
  double start_seconds = 0.0;  // relative to the tracer's epoch
  double duration_seconds = 0.0;
};

class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Allocates a fresh span id (lock-free; ids start at 1, 0 means none).
  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  /// Appends a completed span (one lock; also registers the calling
  /// thread's dense index into `record.thread_index`).
  void Record(SpanRecord record);

  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

  size_t span_count() const;
  std::vector<SpanRecord> Snapshot() const;

  /// Total wall-clock covered by root spans (parent == 0); the coverage
  /// denominator for the "spans cover the run" acceptance check.
  double RootSeconds() const;

  /// Chrome trace-event JSON: {"traceEvents": [{"ph": "X", ...}, ...]}.
  std::string ToChromeTraceJson() const;

  /// Indented tree sorted by start time, durations annotated.
  std::string ToTextTree() const;

  /// Writes ToChromeTraceJson() to `path`; false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

  /// The calling thread's innermost open span id (0 when none) — what a
  /// new ScopedSpan without an explicit parent attaches to, and what
  /// ThreadPool::Submit captures so pool task spans parent under the span
  /// that enqueued them.
  static uint64_t CurrentSpan();

 private:
  friend class ScopedSpan;

  std::atomic<uint64_t> next_id_{1};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::map<std::thread::id, size_t> thread_indices_;
};

/// RAII span handle.  Null tracer = no-op.
class ScopedSpan {
 public:
  /// Opens a span parented under the calling thread's current span.
  ScopedSpan(Tracer* tracer, std::string_view name)
      : ScopedSpan(tracer, name, Tracer::CurrentSpan()) {}

  /// Opens a span with an explicit parent (cross-thread attribution).
  ScopedSpan(Tracer* tracer, std::string_view name, uint64_t parent);

  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// This span's id (0 when the tracer is null) — pass to work spawned on
  /// other threads so their spans nest under this one.
  uint64_t id() const { return id_; }

 private:
  Tracer* tracer_;
  std::string name_;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  uint64_t saved_current_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace csm

#endif  // CSM_OBS_TRACE_H_
