// Forward-declaration-only observability hooks, for headers that want to
// accept optional tracing/metrics sinks without pulling in the full obs
// headers (e.g. core/view_inference.h threads these through to the
// classifier grid).

#ifndef CSM_OBS_HOOKS_H_
#define CSM_OBS_HOOKS_H_

#include <cstdint>

namespace csm {
namespace obs {

class Tracer;
class MetricsRegistry;

/// Optional observability sinks handed down through a pipeline layer.
/// Null members mean "off"; every consumer must tolerate nulls, so a
/// default-constructed ObsHooks is the zero-overhead path.
struct ObsHooks {
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  /// Span id the callee's spans should be parented under (0 = root).
  /// Explicit because callee work may run on pool workers, where the
  /// calling thread's implicit current-span is not visible.
  uint64_t parent_span = 0;
};

}  // namespace obs
}  // namespace csm

#endif  // CSM_OBS_HOOKS_H_
