#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace csm {
namespace obs {
namespace {

/// First bucket upper bound: 100 nanoseconds.
constexpr double kFirstBound = 1e-7;

/// Formats a double compactly for ToString/ToJson (%.9g keeps sub-second
/// latencies exact enough while staying readable).
std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

double Histogram::BucketBound(size_t b) {
  double bound = kFirstBound;
  for (size_t i = 0; i < b; ++i) bound *= 2.0;
  return bound;
}

void Histogram::Observe(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  size_t b = 0;
  double bound = kFirstBound;
  while (b < kNumBuckets && value > bound) {
    bound *= 2.0;
    ++b;
  }
  ++buckets_[b];  // b == kNumBuckets is the overflow bucket
}

void Histogram::MergeFrom(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t b = 0; b < buckets_.size(); ++b) buckets_[b] += other.buckets_[b];
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  const double rank = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets_[b];
    if (static_cast<double>(cumulative) < rank) continue;
    // Interpolate inside bucket b.  Bucket 0 spans [0, first bound); the
    // overflow bucket spans [last bound, observed max].
    const double lo = b == 0 ? 0.0 : BucketBound(b - 1);
    const double hi = b < kNumBuckets ? BucketBound(b) : max_;
    const double fraction =
        (rank - before) / static_cast<double>(buckets_[b]);
    const double value = lo + fraction * (std::max(hi, lo) - lo);
    return std::clamp(value, min_, max_);
  }
  return max_;
}

HistogramSummary Histogram::Summary() const {
  HistogramSummary s;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  s.p50 = Quantile(0.50);
  s.p95 = Quantile(0.95);
  s.p99 = Quantile(0.99);
  return s;
}

void MetricsRegistry::AddSeconds(const std::string& phase, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  seconds_[phase] += seconds;
}

double MetricsRegistry::Seconds(const std::string& phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = seconds_.find(phase);
  return it == seconds_.end() ? 0.0 : it->second;
}

void MetricsRegistry::AddCounter(const std::string& name, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += n;
}

uint64_t MetricsRegistry::Counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::AddGauge(const std::string& name, double delta) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] += delta;
}

double MetricsRegistry::Gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name].Observe(value);
}

HistogramSummary MetricsRegistry::Summary(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramSummary{} : it->second.Summary();
}

PhaseReport MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  PhaseReport report;
  report.seconds = seconds_;
  report.counters = counters_;
  report.gauges = gauges_;
  for (const auto& [name, histogram] : histograms_) {
    report.histograms[name] = histogram.Summary();
  }
  return report;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  // Copy under `other`'s lock, fold under ours (never both at once, so two
  // registries can merge into each other without lock-order issues).
  std::map<std::string, double> seconds;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    seconds = other.seconds_;
    counters = other.counters_;
    gauges = other.gauges_;
    histograms = other.histograms_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, value] : seconds) seconds_[name] += value;
  for (const auto& [name, value] : counters) counters_[name] += value;
  for (const auto& [name, value] : gauges) gauges_[name] = value;
  for (const auto& [name, histogram] : histograms) {
    histograms_[name].MergeFrom(histogram);
  }
}

double PhaseReport::Seconds(const std::string& name) const {
  auto it = seconds.find(name);
  return it == seconds.end() ? 0.0 : it->second;
}

uint64_t PhaseReport::Count(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

double PhaseReport::Gauge(const std::string& name) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second;
}

HistogramSummary PhaseReport::Histogram(const std::string& name) const {
  auto it = histograms.find(name);
  return it == histograms.end() ? HistogramSummary{} : it->second;
}

double PhaseReport::TotalSeconds() const {
  double total = 0.0;
  for (const auto& [name, value] : seconds) total += value;
  return total;
}

std::string PhaseReport::ToString() const {
  std::string out;
  for (const auto& [name, value] : seconds) {
    out += name + ": " + Num(value) + "s\n";
  }
  for (const auto& [name, value] : counters) {
    out += name + ": " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += name + ": " + Num(value) + "\n";
  }
  for (const auto& [name, s] : histograms) {
    out += name + ": count=" + std::to_string(s.count) + " sum=" +
           Num(s.sum) + " min=" + Num(s.min) + " p50=" + Num(s.p50) +
           " p95=" + Num(s.p95) + " p99=" + Num(s.p99) + " max=" +
           Num(s.max) + "\n";
  }
  return out;
}

std::string PhaseReport::ToJson() const {
  std::string out = "{\n";
  auto section = [&out](const char* title, const std::string& body,
                        bool last) {
    out += "  \"";
    out += title;
    out += "\": {" + body + "}";
    out += last ? "\n" : ",\n";
  };
  std::string body;
  for (const auto& [name, value] : seconds) {
    if (!body.empty()) body += ", ";
    body += "\"" + name + "\": " + Num(value);
  }
  section("seconds", body, false);
  body.clear();
  for (const auto& [name, value] : counters) {
    if (!body.empty()) body += ", ";
    body += "\"" + name + "\": " + std::to_string(value);
  }
  section("counters", body, false);
  body.clear();
  for (const auto& [name, value] : gauges) {
    if (!body.empty()) body += ", ";
    body += "\"" + name + "\": " + Num(value);
  }
  section("gauges", body, false);
  body.clear();
  for (const auto& [name, s] : histograms) {
    if (!body.empty()) body += ", ";
    body += "\"" + name + "\": {\"count\": " + std::to_string(s.count) +
            ", \"sum\": " + Num(s.sum) + ", \"min\": " + Num(s.min) +
            ", \"max\": " + Num(s.max) + ", \"p50\": " + Num(s.p50) +
            ", \"p95\": " + Num(s.p95) + ", \"p99\": " + Num(s.p99) + "}";
  }
  section("histograms", body, true);
  out += "}\n";
  return out;
}

}  // namespace obs
}  // namespace csm
