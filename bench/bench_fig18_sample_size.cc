// Figure 18: accuracy vs sample size (number of tuples in the source
// inventory table), TgtClassInfer.
//
// Expected shape (Section 5.6): with few tuples InferCandidateViews often
// misses the correct candidate views; accuracy climbs as the sample grows.

#include "bench/bench_util.h"

int main() {
  using namespace csm;
  using namespace csm::bench;

  const size_t reps = GlobalBenchConfig().Repetitions(5);
  ResultTable table("Fig 18: accuracy vs sample size (TgtClassInfer)",
                    {"tuples", "accuracy", "fmeasure", "precision"});
  for (size_t n : {25u, 50u, 100u, 200u, 400u, 800u}) {
    RetailOptions data = DefaultRetail();
    data.num_items = n;
    ContextMatchOptions options = DefaultMatch();
    options.inference = ViewInferenceKind::kTgtClass;
    AggregatedMetrics metrics = RunRepeated(reps, 900, [&](uint64_t seed) {
      return RetailTrial(data, options, seed);
    });
    table.AddRow({std::to_string(n),
                  ResultTable::Num(metrics.Mean("accuracy")),
                  ResultTable::Num(metrics.Mean("fmeasure")),
                  ResultTable::Num(metrics.Mean("precision"))});
  }
  table.Print();
  return 0;
}
