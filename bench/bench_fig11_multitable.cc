// Figure 11: MultiTable vs QualTable F-measure (NaiveInfer for
// InferCandidateViews), one row per Retail target schema.
//
// Expected shape (Section 5.2): MultiTable consistently performs
// significantly worse than QualTable.

#include "bench/bench_util.h"

int main() {
  using namespace csm;
  using namespace csm::bench;

  const size_t reps = GlobalBenchConfig().Repetitions(5);
  ResultTable table("Fig 11: MultiTable vs QualTable (NaiveInfer)",
                    {"target", "F_qualtable", "F_multitable", "gap"});
  for (RetailTarget target : {RetailTarget::kRyanEyers,
                              RetailTarget::kAaronDay,
                              RetailTarget::kBarrettArney}) {
    RetailOptions data = DefaultRetail();
    data.target = target;
    ContextMatchOptions qual = DefaultMatch();
    qual.inference = ViewInferenceKind::kNaive;
    qual.selection = SelectionPolicy::kQualTable;
    ContextMatchOptions multi = qual;
    multi.selection = SelectionPolicy::kMultiTable;
    AggregatedMetrics qual_metrics =
        RunRepeated(reps, 200, [&](uint64_t seed) {
          return RetailTrial(data, qual, seed);
        });
    AggregatedMetrics multi_metrics =
        RunRepeated(reps, 200, [&](uint64_t seed) {
          return RetailTrial(data, multi, seed);
        });
    double fq = qual_metrics.Mean("fmeasure");
    double fm = multi_metrics.Mean("fmeasure");
    table.AddRow({RetailTargetToString(target), ResultTable::Num(fq),
                  ResultTable::Num(fm), ResultTable::Num(fq - fm)});
  }
  table.Print();
  return 0;
}
