// Figure 22: total ContextMatch runtime vs tau on the Retail data set.
//
// Expected shape (Section 5.8): runtime decreases as tau increases (fewer
// accepted matches to rescore against each candidate view), but the effect
// is modest compared to the total runtime.

#include "bench/bench_util.h"

int main() {
  using namespace csm;
  using namespace csm::bench;

  const size_t reps = GlobalBenchConfig().Repetitions(3);
  ResultTable table("Fig 22: Retail runtime vs tau",
                    {"tau", "seconds", "relative_to_tau_0.3"});
  double baseline = 0.0;
  for (double tau : {0.30, 0.40, 0.50, 0.60, 0.70, 0.80}) {
    RetailOptions data = DefaultRetail();
    ContextMatchOptions options = DefaultMatch();
    options.tau = tau;
    AggregatedMetrics metrics = RunRepeated(reps, 1300, [&](uint64_t seed) {
      return RetailTrial(data, options, seed);
    });
    double seconds = metrics.Mean("match_seconds");
    if (baseline == 0.0) baseline = seconds;
    table.AddRow({ResultTable::Num(tau, 2), ResultTable::Num(seconds),
                  ResultTable::Num(baseline > 0 ? seconds / baseline : 0.0,
                                   2)});
  }
  table.Print();
  return 0;
}
