// Figure 17: runtime vs schema size for SrcClassInfer vs TgtClassInfer.
//
// Expected shape (Section 5.5): TgtClassInfer runs much slower than
// SrcClassInfer as the schema grows — it must classify every source value
// against every target column per (h, l) pair — while both remain slightly
// more accurate than NaiveInfer.

#include "bench/bench_util.h"

int main() {
  using namespace csm;
  using namespace csm::bench;

  const size_t reps = GlobalBenchConfig().Repetitions(3);
  ResultTable table("Fig 17: runtime vs schema size",
                    {"extra_attrs", "src_seconds", "tgt_seconds", "tgt/src"});
  for (size_t n : {0u, 4u, 8u, 12u, 16u}) {
    RetailOptions data = DefaultRetail();
    data.num_items = 200;
    data.extra_noncategorical = n;
    data.extra_categorical = n / 4;
    ContextMatchOptions src = DefaultMatch();
    src.inference = ViewInferenceKind::kSrcClass;
    ContextMatchOptions tgt = src;
    tgt.inference = ViewInferenceKind::kTgtClass;
    AggregatedMetrics src_metrics = RunRepeated(reps, 800, [&](uint64_t seed) {
      return RetailTrial(data, src, seed);
    });
    AggregatedMetrics tgt_metrics = RunRepeated(reps, 800, [&](uint64_t seed) {
      return RetailTrial(data, tgt, seed);
    });
    double ss = src_metrics.Mean("match_seconds");
    double ts = tgt_metrics.Mean("match_seconds");
    table.AddRow({std::to_string(n), ResultTable::Num(ss),
                  ResultTable::Num(ts),
                  ResultTable::Num(ss > 0 ? ts / ss : 0.0, 2)});
  }
  table.Print();
  return 0;
}
