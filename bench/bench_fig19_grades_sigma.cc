// Figure 19: Grades (attribute normalization) accuracy vs the per-exam
// standard deviation sigma, for NaiveInfer / SrcClassInfer / TgtClassInfer
// with ClioQualTable (QualTable + the Section 4.3 join rules; the join-rule
// machinery is exercised end-to-end in examples/attribute_normalization and
// the integration tests — the accuracy metric here follows Section 5's
// match-level definition).
//
// Expected shape (Section 5.7): high accuracy for low sigma, decaying as
// sigma grows and neighboring exams' score distributions overlap.

#include "bench/bench_util.h"

int main() {
  using namespace csm;
  using namespace csm::bench;

  const size_t reps = GlobalBenchConfig().Repetitions(5);
  ResultTable table("Fig 19: Grades accuracy vs sigma (ClioQualTable)",
                    {"sigma", "F_naive", "F_src", "F_tgt"});
  for (double sigma : {1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0}) {
    GradesOptions data;
    data.sigma = sigma;
    std::vector<std::string> row = {ResultTable::Num(sigma, 1)};
    for (ViewInferenceKind kind : {ViewInferenceKind::kNaive,
                                   ViewInferenceKind::kSrcClass,
                                   ViewInferenceKind::kTgtClass}) {
      ContextMatchOptions options = DefaultGradesMatch();
      options.inference = kind;
      AggregatedMetrics metrics = RunRepeated(reps, 1000, [&](uint64_t seed) {
        return GradesTrial(data, options, seed);
      });
      row.push_back(ResultTable::Num(metrics.Mean("fmeasure")));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
