// Figure 21: Grades quality vs tau.
//
// Expected shape (Section 5.8): the base matches between grades_narrow and
// grades_wide are more tenuous than Retail's, so raising tau past a
// breaking point collapses accuracy — the per-exam views are never even
// considered once their base matches are pruned.

#include "bench/bench_util.h"

int main() {
  using namespace csm;
  using namespace csm::bench;

  const size_t reps = GlobalBenchConfig().Repetitions(5);
  ResultTable table("Fig 21: Grades quality vs tau",
                    {"tau", "fmeasure", "accuracy", "precision"});
  for (double tau : {0.30, 0.40, 0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80,
                     0.90}) {
    GradesOptions data;
    data.sigma = 5.0;
    ContextMatchOptions options = DefaultGradesMatch();
    options.tau = tau;
    AggregatedMetrics metrics = RunRepeated(reps, 1200, [&](uint64_t seed) {
      return GradesTrial(data, options, seed);
    });
    table.AddRow({ResultTable::Num(tau, 2),
                  ResultTable::Num(metrics.Mean("fmeasure")),
                  ResultTable::Num(metrics.Mean("accuracy")),
                  ResultTable::Num(metrics.Mean("precision"))});
  }
  table.Print();
  return 0;
}
