// Figures 8-10: F-measure vs the improvement threshold omega, under
// EarlyDisjuncts and LateDisjuncts, one series per Retail target schema
// (Ryan_Eyers, Aaron_Day, Barrett_Arney).
//
// Expected shape (paper Section 5.1): both policies exhibit a plateau of
// near-optimal omega values (omega*); EarlyDisjuncts' plateau is clearly
// wider, i.e., LateDisjuncts is more sensitive to omega.

#include "bench/bench_util.h"

int main() {
  using namespace csm;
  using namespace csm::bench;

  const size_t reps = GlobalBenchConfig().Repetitions(5);
  const double omegas[] = {0.0,  0.025, 0.05, 0.075, 0.1, 0.125,
                           0.15, 0.2,   0.25, 0.3,   0.4, 0.5};

  for (RetailTarget target : {RetailTarget::kRyanEyers,
                              RetailTarget::kAaronDay,
                              RetailTarget::kBarrettArney}) {
    ResultTable table(
        std::string("Fig 8-10: FMeasure vs omega, target ") +
            RetailTargetToString(target),
        {"omega", "F_early", "F_late"});
    for (double omega : omegas) {
      RetailOptions data = DefaultRetail();
      data.target = target;
      ContextMatchOptions early = DefaultMatch();
      early.omega = omega;
      early.early_disjuncts = true;
      ContextMatchOptions late = early;
      late.early_disjuncts = false;
      AggregatedMetrics early_metrics =
          RunRepeated(reps, 100, [&](uint64_t seed) {
            return RetailTrial(data, early, seed);
          });
      AggregatedMetrics late_metrics =
          RunRepeated(reps, 100, [&](uint64_t seed) {
            return RetailTrial(data, late, seed);
          });
      table.AddRow({ResultTable::Num(omega),
                    ResultTable::Num(early_metrics.Mean("fmeasure")),
                    ResultTable::Num(late_metrics.Mean("fmeasure"))});
    }
    table.Print();
  }
  return 0;
}
