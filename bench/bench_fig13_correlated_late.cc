// Figure 13: same setup as Figure 12 but under LateDisjuncts.
//
// Expected shape (Section 5.3): F-measure degrades much more quickly with
// rho than under EarlyDisjuncts (compare bench_fig12_correlated_early).

#include "bench/bench_util.h"

int main() {
  using namespace csm;
  using namespace csm::bench;

  const size_t reps = GlobalBenchConfig().Repetitions(5);
  ResultTable table("Fig 13: FMeasure vs rho (LateDisjuncts)",
                    {"rho", "F_naive", "F_src", "F_tgt"});
  for (double rho : {0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.99}) {
    RetailOptions data = DefaultRetail();
    data.correlated_attributes = 3;
    data.rho = rho;
    std::vector<std::string> row = {ResultTable::Num(rho, 2)};
    for (ViewInferenceKind kind : {ViewInferenceKind::kNaive,
                                   ViewInferenceKind::kSrcClass,
                                   ViewInferenceKind::kTgtClass}) {
      ContextMatchOptions options = DefaultMatch();
      options.inference = kind;
      options.early_disjuncts = false;
      AggregatedMetrics metrics = RunRepeated(reps, 400, [&](uint64_t seed) {
        return RetailTrial(data, options, seed);
      });
      row.push_back(ResultTable::Num(metrics.Mean("fmeasure")));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
