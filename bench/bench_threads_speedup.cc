// Runtime scaling of the parallel execution engine (the Fig 15/17/22
// runtime family, re-measured against the thread count): one fixed Retail
// workload run at threads = 1, 2, 4 and all-cores, reporting total and
// per-phase wall-clock plus the speedup over the serial run.
//
// Results are bit-identical at every thread count (the determinism test
// enforces this), so the quality columns are constant and only time moves.
//
// Writes a machine-readable record to BENCH_threads_speedup.json (or
// argv[1]); the JSON includes the machine's hardware concurrency because
// speedup is bounded by the cores actually available.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "exec/thread_pool.h"

int main(int argc, char** argv) {
  using namespace csm;
  using namespace csm::bench;

  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_threads_speedup.json";
  const size_t reps = GlobalBenchConfig().Repetitions(3);
  const size_t hardware = exec::ThreadPool::HardwareThreads();
  if (hardware == 1) {
    std::fprintf(stderr,
                 "\n"
                 "*** WARNING: hardware_concurrency is 1 on this machine.  *\n"
                 "*** Every thread count below runs on a single core, so  *\n"
                 "*** speedup_vs_serial cannot exceed 1.0; treat the      *\n"
                 "*** multi-thread rows as overhead measurements only.    *\n"
                 "\n");
  }

  // Refuse before burning bench time, not just before the write.
  if (!SpeedupRecordWriteAllowed(json_path, hardware)) return 4;

  RetailOptions data = DefaultRetail();
  data.num_items = 400;
  ContextMatchOptions match = DefaultMatch();

  std::vector<size_t> thread_counts = {1, 2, 4};
  if (hardware > 4) thread_counts.push_back(hardware);

  ResultTable table(
      "Threads: ContextMatch runtime scaling (Retail, SrcClassInfer)",
      {"threads", "match_seconds", "standard", "inference", "scoring",
       "selection", "speedup", "fmeasure"});

  struct Row {
    size_t threads;
    double match_seconds, standard, inference, scoring, selection, fmeasure;
    double scoring_view_p95, inference_cell_p95;
  };
  std::vector<Row> rows;
  double serial_seconds = 0.0;
  for (size_t threads : thread_counts) {
    match.threads = threads;
    AggregatedMetrics m = RunRepeated(reps, 900, [&](uint64_t seed) {
      return RetailTrial(data, match, seed);
    });
    Row row;
    row.threads = threads;
    row.match_seconds = m.Mean("match_seconds");
    row.standard = m.Mean("standard_match_seconds");
    row.inference = m.Mean("inference_seconds");
    row.scoring = m.Mean("scoring_seconds");
    row.selection = m.Mean("selection_seconds");
    row.fmeasure = m.Mean("fmeasure");
    row.scoring_view_p95 = m.Mean("scoring_view_p95_seconds");
    row.inference_cell_p95 = m.Mean("inference_cell_p95_seconds");
    if (threads == 1) serial_seconds = row.match_seconds;
    rows.push_back(row);
    double speedup =
        row.match_seconds > 0 ? serial_seconds / row.match_seconds : 0.0;
    table.AddRow({std::to_string(threads), ResultTable::Num(row.match_seconds),
                  ResultTable::Num(row.standard),
                  ResultTable::Num(row.inference),
                  ResultTable::Num(row.scoring),
                  ResultTable::Num(row.selection),
                  ResultTable::Num(speedup, 2),
                  ResultTable::Num(row.fmeasure)});
  }
  table.Print();
  std::printf("hardware_concurrency: %zu\n", hardware);

  FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"threads_speedup\",\n"
               "  \"figure_family\": \"Fig 15/17/22 runtime\",\n"
               "  \"workload\": {\"dataset\": \"retail\", \"num_items\": %zu,"
               " \"gamma\": %zu, \"inference\": \"SrcClassInfer\","
               " \"repetitions\": %zu},\n"
               "  \"hardware_concurrency\": %zu,\n"
               "  \"note\": \"speedup_vs_serial is bounded above by "
               "hardware_concurrency; %zu core%s available on this "
               "machine\",\n"
               "  \"rows\": [\n",
               data.num_items, data.gamma, reps, hardware, hardware,
               hardware == 1 ? "" : "s");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        out,
        "    {\"threads\": %zu, \"match_seconds\": %.4f,"
        " \"standard_match_seconds\": %.4f, \"inference_seconds\": %.4f,"
        " \"scoring_seconds\": %.4f, \"selection_seconds\": %.4f,"
        " \"scoring_view_p95_seconds\": %.6f,"
        " \"inference_cell_p95_seconds\": %.6f,"
        " \"speedup_vs_serial\": %.3f, \"fmeasure\": %.4f}%s\n",
        r.threads, r.match_seconds, r.standard, r.inference, r.scoring,
        r.selection, r.scoring_view_p95, r.inference_cell_p95,
        r.match_seconds > 0 ? serial_seconds / r.match_seconds : 0.0,
        r.fmeasure, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
