// Resilience under deterministic chaos: the same closed-loop client fleet
// as bench_service_load, but driven through MatchClient (retries + backoff
// + budget) against a service with the self-healing layer enabled
// (watchdog, CoDel shedding, brownout), while the FaultInjector fails a
// scripted fraction of dispatches (period-based: every Nth dispatch, a
// deterministic 0% / 5% / 10% schedule).
//
// Reported per fault rate: goodput (fraction of calls answered OK after
// retries), client retry count, service shed/brownout/fault counters, and
// the p50/p99 tail the clients observed.  The acceptance bar this bench
// exists to watch: goodput at a 10% dispatch fault rate stays >= 90% of
// the fault-free run, with every answer a definitive StatusCode.
//
// Knobs (shared BenchConfig): CSM_BENCH_CLIENTS client threads (default 8),
// CSM_BENCH_REQUESTS calls per scenario (default 240), CSM_BENCH_THREADS
// engine workers (default all cores).
//
// Writes a machine-readable record to BENCH_service_resilience.json (or
// argv[1]).

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/fault_injector.h"
#include "exec/thread_pool.h"
#include "service/match_client.h"
#include "service/match_service.h"

int main(int argc, char** argv) {
  using namespace csm;
  using namespace csm::bench;

  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_service_resilience.json";
  const BenchConfig& config = GlobalBenchConfig();
  const size_t clients = config.clients > 0 ? config.clients : 8;
  const size_t requests = config.requests > 0 ? config.requests : 240;
  const size_t engine_threads = config.Threads(/*default_threads=*/0);

  struct Workload {
    Database source{"source"};
    Database target{"target"};
  };
  std::vector<Workload> workloads;
  for (size_t k = 0; k < 2; ++k) {
    RetailOptions options;
    options.num_items = 80 + 40 * k;
    options.gamma = 2;
    options.seed = 100 + k;
    RetailDataset data = MakeRetailDataset(options);
    workloads.push_back({std::move(data.source), std::move(data.target)});
  }
  for (size_t k = 0; k < 2; ++k) {
    GradesOptions options;
    options.seed = 200 + k;
    GradesDataset data = MakeGradesDataset(options);
    workloads.push_back({std::move(data.source), std::move(data.target)});
  }

  // period 0 = fault-free; period N fails every Nth dispatch (1/N rate).
  struct Scenario {
    const char* name;
    uint64_t period;
    double rate;
  };
  const Scenario scenarios[] = {
      {"fault_0pct", 0, 0.0},
      {"fault_5pct", 20, 0.05},
      {"fault_10pct", 10, 0.10},
  };

  struct Row {
    const Scenario* scenario;
    double wall_seconds = 0.0;
    size_t ok = 0;
    uint64_t retries = 0;
    uint64_t shed = 0;
    uint64_t brownout_runs = 0;
    uint64_t dispatch_faults = 0;
    uint64_t watchdog_cancels = 0;
    double p50 = 0.0, p99 = 0.0;
  };
  std::vector<Row> rows;

  std::printf(
      "service resilience: %zu client threads, %zu calls/scenario, "
      "engine threads=%zu\n",
      clients, requests, engine_threads);

  for (const Scenario& scenario : scenarios) {
    FaultInjector::DisarmAll();
    if (scenario.period > 0) {
      FaultInjector::ArmSpec spec;
      spec.site = "service.dispatch";
      spec.action = FaultInjector::Action::kFail;
      spec.fire_limit = 0;  // sustained schedule
      spec.period = scenario.period;
      FaultInjector::Arm(spec);
    }

    ServiceOptions options;
    options.engine = DefaultMatch();
    options.engine.threads = engine_threads;
    options.max_queue = clients + 1;
    options.watchdog_interval_ms = 200;
    options.queue_target_ms = 2000;  // shed only pathological queue delays
    options.shed_min_depth = clients;
    MatchService service(options);

    MatchClientOptions client_options;
    client_options.retry.max_attempts = 3;
    client_options.retry.initial_backoff_ms = 1.0;
    client_options.retry.max_backoff_ms = 20.0;
    client_options.retry_budget_capacity = 0.2 * requests;
    MatchClient client(service, client_options);

    std::atomic<size_t> next{0};
    std::atomic<size_t> ok{0};
    Stopwatch wall;
    std::vector<std::thread> fleet;
    fleet.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      fleet.emplace_back([&] {
        for (;;) {
          const size_t id = next.fetch_add(1);
          if (id >= requests) return;
          const Workload& w = workloads[id % workloads.size()];
          MatchRequest request;
          request.tenant = "tenant-" + std::to_string(id % 4);
          request.deadline_ms = 60000 + static_cast<int64_t>(id);
          request.source = BorrowDatabase(w.source);
          request.target = BorrowDatabase(w.target);
          if (client.Call(request).ok()) ok.fetch_add(1);
        }
      });
    }
    for (auto& t : fleet) t.join();

    Row row;
    row.scenario = &scenario;
    row.wall_seconds = wall.Seconds();
    service.Stop();
    row.ok = ok.load();
    row.retries = client.retries();
    const obs::PhaseReport report = service.metrics().Snapshot();
    row.shed = report.Count("service.shed_aged");
    row.brownout_runs = report.Count("service.brownout_runs");
    row.dispatch_faults = report.Count("service.dispatch_faults");
    row.watchdog_cancels = report.Count("service.watchdog_stall_cancels") +
                           report.Count("service.watchdog_deadline_cancels");
    const obs::HistogramSummary total =
        report.Histogram("service.total_seconds");
    row.p50 = total.p50;
    row.p99 = total.p99;
    rows.push_back(row);

    std::printf(
        "%-11s goodput %zu/%zu (%.1f%%)  retries %llu  faults %llu  "
        "shed %llu  p50 %.4fs  p99 %.4fs  wall %.2fs\n",
        scenario.name, row.ok, requests, 100.0 * row.ok / requests,
        static_cast<unsigned long long>(row.retries),
        static_cast<unsigned long long>(row.dispatch_faults),
        static_cast<unsigned long long>(row.shed), row.p50, row.p99,
        row.wall_seconds);
  }
  FaultInjector::DisarmAll();

  const double base_goodput =
      rows[0].ok > 0 ? static_cast<double>(rows[0].ok) : 1.0;
  const double worst_ratio = rows.back().ok / base_goodput;
  std::printf("\ngoodput at 10%% faults = %.1f%% of fault-free (floor: 90%%)\n",
              100.0 * worst_ratio);

  FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"service_resilience\",\n"
               "  \"workload\": {\"clients\": %zu, \"requests\": %zu,"
               " \"distinct_workloads\": %zu, \"engine_threads\": %zu,"
               " \"retry_max_attempts\": 3},\n"
               "  \"hardware_concurrency\": %zu,\n"
               "  \"goodput_ratio_at_10pct\": %.4f,\n"
               "  \"scenarios\": [\n",
               clients, requests, workloads.size(), engine_threads,
               exec::ThreadPool::HardwareThreads(), worst_ratio);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"fault_rate\": %.2f,"
        " \"goodput\": %zu, \"calls\": %zu, \"retries\": %llu,"
        " \"dispatch_faults\": %llu, \"shed\": %llu,"
        " \"brownout_runs\": %llu, \"watchdog_cancels\": %llu,"
        " \"p50_seconds\": %.5f, \"p99_seconds\": %.5f,"
        " \"wall_seconds\": %.3f}%s\n",
        row.scenario->name, row.scenario->rate, row.ok, requests,
        static_cast<unsigned long long>(row.retries),
        static_cast<unsigned long long>(row.dispatch_faults),
        static_cast<unsigned long long>(row.shed),
        static_cast<unsigned long long>(row.brownout_runs),
        static_cast<unsigned long long>(row.watchdog_cancels), row.p50,
        row.p99, row.wall_seconds, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());
  return rows.back().ok * 10 >= rows[0].ok * 9 ? 0 : 1;
}
