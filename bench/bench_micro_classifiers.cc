// Micro-benchmarks (google-benchmark): classifier training/classification,
// ClusteredViewGen, view materialization, and condition evaluation.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/clustered_view_gen.h"
#include "datagen/retail_gen.h"
#include "datagen/wordlists.h"
#include "ml/gaussian_classifier.h"
#include "ml/naive_bayes.h"

namespace csm {
namespace {

RetailDataset& SharedData() {
  static RetailDataset* data = [] {
    RetailOptions options;
    options.num_items = 400;
    options.seed = 78;
    return new RetailDataset(MakeRetailDataset(options));
  }();
  return *data;
}

void BM_NaiveBayesTrain(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::pair<Value, std::string>> examples;
  for (int i = 0; i < 200; ++i) {
    examples.emplace_back(Value::String(MakeBookTitle(rng)), "book");
    examples.emplace_back(Value::String(MakeAlbumTitle(rng)), "cd");
  }
  for (auto _ : state) {
    NaiveBayesClassifier nb(3);
    for (const auto& [value, label] : examples) nb.Train(value, label);
    benchmark::DoNotOptimize(nb.TrainingSize());
  }
}
BENCHMARK(BM_NaiveBayesTrain);

void BM_NaiveBayesClassify(benchmark::State& state) {
  Rng rng(6);
  NaiveBayesClassifier nb(3);
  for (int i = 0; i < 200; ++i) {
    nb.Train(Value::String(MakeBookTitle(rng)), "book");
    nb.Train(Value::String(MakeAlbumTitle(rng)), "cd");
  }
  Value probe = Value::String(MakeBookTitle(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nb.Classify(probe));
  }
}
BENCHMARK(BM_NaiveBayesClassify);

void BM_GaussianClassify(benchmark::State& state) {
  Rng rng(7);
  GaussianClassifier g;
  for (int i = 0; i < 500; ++i) {
    g.Train(Value::Real(rng.NextGaussian(20, 5)), "books");
    g.Train(Value::Real(rng.NextGaussian(14, 3)), "cds");
  }
  Value probe = Value::Real(17.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.Classify(probe));
  }
}
BENCHMARK(BM_GaussianClassify);

void BM_ClusteredViewGen(benchmark::State& state) {
  const Table& inv = SharedData().source.GetTable("inventory");
  ClassifierFactory factory =
      [](ValueType type) -> std::unique_ptr<ValueClassifier> {
    if (type == ValueType::kInt || type == ValueType::kReal) {
      return std::make_unique<GaussianClassifier>();
    }
    return std::make_unique<NaiveBayesClassifier>(3);
  };
  bool early = state.range(0) != 0;
  for (auto _ : state) {
    Rng rng(9);
    benchmark::DoNotOptimize(
        ClusteredViewGen(inv, factory, {}, {}, early, rng).size());
  }
}
BENCHMARK(BM_ClusteredViewGen)->Arg(0)->Arg(1);

void BM_ViewMaterialize(benchmark::State& state) {
  const RetailDataset& data = SharedData();
  const Table& inv = data.source.GetTable("inventory");
  View view("books", "inventory",
            Condition::Equals("ItemType", data.book_labels[0]));
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.Materialize(inv).num_rows());
  }
}
BENCHMARK(BM_ViewMaterialize);

void BM_ConditionEvaluate(benchmark::State& state) {
  const RetailDataset& data = SharedData();
  const Table& inv = data.source.GetTable("inventory");
  Condition condition = Condition::In(
      "ItemType", {data.book_labels[0], data.cd_labels[0]});
  for (auto _ : state) {
    size_t hits = 0;
    for (const Row& row : inv.rows()) {
      if (condition.Evaluate(inv.schema(), row)) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_ConditionEvaluate);

}  // namespace
}  // namespace csm

BENCHMARK_MAIN();
