// Shared trial runners for the figure benches: one ContextMatch run over a
// generated data set, reporting the Section 5 quality metrics plus phase
// timings and per-unit latency quantiles from the run's PhaseReport.
//
// Set CSM_BENCH_TRACE=<prefix> to make every trial write a Chrome trace
// (load in chrome://tracing or https://ui.perfetto.dev) to
// "<prefix>-<dataset>-<seed>.json".

#ifndef CSM_BENCH_BENCH_UTIL_H_
#define CSM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "core/match_engine.h"
#include "datagen/grades_gen.h"
#include "datagen/retail_gen.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "obs/trace.h"

namespace csm {
namespace bench {

// Environment knobs come from the shared BenchConfig (harness/experiment.h)
// — use GlobalBenchConfig() instead of reading CSM_BENCH_* directly.

/// Folds a run's PhaseReport into the trial metrics under the legacy bench
/// JSON key names, plus per-unit latency quantiles from the histograms.
inline void AddPhaseMetrics(const ContextMatchResult& result,
                            MetricMap& metrics) {
  metrics["match_seconds"] = result.TotalSeconds();
  metrics["standard_match_seconds"] = result.phases.Seconds("standard_match");
  metrics["inference_seconds"] = result.phases.Seconds("inference");
  metrics["scoring_seconds"] = result.phases.Seconds("scoring");
  metrics["selection_seconds"] = result.phases.Seconds("selection");
  metrics["threads"] = static_cast<double>(result.threads_used);
  const obs::HistogramSummary scoring =
      result.phases.Histogram("scoring.view_seconds");
  metrics["scoring_view_p50_seconds"] = scoring.p50;
  metrics["scoring_view_p95_seconds"] = scoring.p95;
  const obs::HistogramSummary cells =
      result.phases.Histogram("inference.cell_seconds");
  metrics["inference_cell_p50_seconds"] = cells.p50;
  metrics["inference_cell_p95_seconds"] = cells.p95;
}

/// One engine run with optional CSM_BENCH_TRACE trace export.
inline ContextMatchResult RunEngineTrial(const Database& source,
                                         const Database& target,
                                         const ContextMatchOptions& options,
                                         const std::string& dataset,
                                         uint64_t seed) {
  MatchEngine engine(options);
  obs::Tracer tracer;
  const char* trace_prefix = GlobalBenchConfig().TracePrefix();
  if (trace_prefix != nullptr) engine.set_tracer(&tracer);
  MatchRequest request;
  request.source = BorrowDatabase(source);
  request.target = BorrowDatabase(target);
  ContextMatchResult result = std::move(engine.Execute(request).result);
  if (trace_prefix != nullptr) {
    tracer.WriteChromeTrace(std::string(trace_prefix) + "-" + dataset + "-" +
                            std::to_string(seed) + ".json");
  }
  return result;
}

/// Runs ContextMatch on a Retail data set and returns the quality metrics.
inline MetricMap RetailTrial(RetailOptions data_options,
                             ContextMatchOptions match_options,
                             uint64_t seed) {
  data_options.seed = seed;
  match_options.seed = seed ^ 0x9e3779b97f4a7c15ULL;
  RetailDataset data = MakeRetailDataset(data_options);
  ContextMatchResult result =
      RunEngineTrial(data.source, data.target, match_options, "retail", seed);
  MatchQuality quality = EvaluateMatches(data.truth, result.matches);
  MetricMap metrics;
  metrics["fmeasure"] = quality.fmeasure;
  metrics["accuracy"] = quality.accuracy;
  metrics["precision"] = quality.precision;
  metrics["views"] = static_cast<double>(result.pool.candidate_views.size());
  metrics["selected"] = static_cast<double>(result.selected_views.size());
  AddPhaseMetrics(result, metrics);
  return metrics;
}

/// Same for the Grades data set.
inline MetricMap GradesTrial(GradesOptions data_options,
                             ContextMatchOptions match_options,
                             uint64_t seed) {
  data_options.seed = seed;
  match_options.seed = seed ^ 0x9e3779b97f4a7c15ULL;
  GradesDataset data = MakeGradesDataset(data_options);
  ContextMatchResult result =
      RunEngineTrial(data.source, data.target, match_options, "grades", seed);
  MatchQuality quality = EvaluateMatches(data.truth, result.matches);
  MetricMap metrics;
  metrics["fmeasure"] = quality.fmeasure;
  metrics["accuracy"] = quality.accuracy;
  metrics["precision"] = quality.precision;
  metrics["views"] = static_cast<double>(result.pool.candidate_views.size());
  metrics["selected"] = static_cast<double>(result.selected_views.size());
  AddPhaseMetrics(result, metrics);
  return metrics;
}

/// Baseline retail configuration used across the figures (gamma = 4,
/// tau = 0.5, omega = 0.1 unless the figure sweeps it).
inline RetailOptions DefaultRetail() {
  RetailOptions options;
  options.num_items = 300;
  options.gamma = 4;
  return options;
}

inline ContextMatchOptions DefaultMatch() {
  ContextMatchOptions options;
  options.tau = 0.5;
  options.omega = 0.1;
  options.inference = ViewInferenceKind::kSrcClass;
  options.selection = SelectionPolicy::kQualTable;
  options.early_disjuncts = true;
  options.threads = GlobalBenchConfig().Threads(/*default_threads=*/1);
  return options;
}

/// Reads "hardware_concurrency": N out of a previously written bench JSON;
/// 0 when the file does not exist or carries no such field.
inline size_t RecordedHardwareConcurrency(const std::string& json_path) {
  std::ifstream in(json_path);
  if (!in) return 0;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const std::string key = "\"hardware_concurrency\":";
  const size_t pos = text.find(key);
  if (pos == std::string::npos) return 0;
  return static_cast<size_t>(
      std::strtoull(text.c_str() + pos + key.size(), nullptr, 10));
}

/// The speedup-record overwrite guard: a JSON recorded on a machine with
/// more cores than this one must not be silently replaced by a run that
/// cannot exhibit any parallel speedup (that is exactly how a stale 1-core
/// record once shipped as the repo's official scaling data).  Returns true
/// when writing `json_path` is allowed: the prior record's core count is
/// <= `hardware`, there is no prior record, or CSM_BENCH_FORCE is set.
inline bool SpeedupRecordWriteAllowed(const std::string& json_path,
                                      size_t hardware) {
  const size_t recorded = RecordedHardwareConcurrency(json_path);
  if (recorded <= hardware || GlobalBenchConfig().force) return true;
  std::fprintf(stderr,
               "REFUSING to overwrite %s: it was recorded with "
               "hardware_concurrency=%zu but this machine has %zu core%s.\n"
               "Re-run on a machine with >= %zu cores, or set "
               "CSM_BENCH_FORCE=1 to overwrite anyway.\n",
               json_path.c_str(), recorded, hardware,
               hardware == 1 ? "" : "s", recorded);
  return false;
}

/// Grades runs use the calibrated tau/omega for attribute normalization —
/// the grades base matches are more tenuous than Retail's (Section 5.8), so
/// tau sits at the low edge of the Fig 21 plateau and omega is small enough
/// that the shrinking per-view improvement margin at high sigma decays
/// gradually (see EXPERIMENTS.md) — and LateDisjuncts so one view per exam
/// survives selection.
inline ContextMatchOptions DefaultGradesMatch() {
  ContextMatchOptions options;
  options.tau = 0.45;
  options.omega = 0.025;
  options.inference = ViewInferenceKind::kSrcClass;
  options.selection = SelectionPolicy::kQualTable;
  options.early_disjuncts = false;
  options.threads = GlobalBenchConfig().Threads(/*default_threads=*/1);
  return options;
}

}  // namespace bench
}  // namespace csm

#endif  // CSM_BENCH_BENCH_UTIL_H_
