// Shared trial runners for the figure benches: one ContextMatch run over a
// generated data set, reporting the Section 5 quality metrics plus phase
// timings.

#ifndef CSM_BENCH_BENCH_UTIL_H_
#define CSM_BENCH_BENCH_UTIL_H_

#include "core/context_match.h"
#include "datagen/grades_gen.h"
#include "datagen/retail_gen.h"
#include "harness/experiment.h"
#include "harness/report.h"

namespace csm {
namespace bench {

/// Runs ContextMatch on a Retail data set and returns the quality metrics.
inline MetricMap RetailTrial(RetailOptions data_options,
                             ContextMatchOptions match_options,
                             uint64_t seed) {
  data_options.seed = seed;
  match_options.seed = seed ^ 0x9e3779b97f4a7c15ULL;
  RetailDataset data = MakeRetailDataset(data_options);
  ContextMatchResult result =
      ContextMatch(data.source, data.target, match_options);
  MatchQuality quality = EvaluateMatches(data.truth, result.matches);
  MetricMap metrics;
  metrics["fmeasure"] = quality.fmeasure;
  metrics["accuracy"] = quality.accuracy;
  metrics["precision"] = quality.precision;
  metrics["views"] = static_cast<double>(result.pool.candidate_views.size());
  metrics["selected"] = static_cast<double>(result.selected_views.size());
  metrics["match_seconds"] = result.TotalSeconds();
  metrics["standard_match_seconds"] = result.standard_match_seconds;
  metrics["inference_seconds"] = result.inference_seconds;
  metrics["scoring_seconds"] = result.scoring_seconds;
  metrics["selection_seconds"] = result.selection_seconds;
  metrics["threads"] = static_cast<double>(result.threads_used);
  return metrics;
}

/// Same for the Grades data set.
inline MetricMap GradesTrial(GradesOptions data_options,
                             ContextMatchOptions match_options,
                             uint64_t seed) {
  data_options.seed = seed;
  match_options.seed = seed ^ 0x9e3779b97f4a7c15ULL;
  GradesDataset data = MakeGradesDataset(data_options);
  ContextMatchResult result =
      ContextMatch(data.source, data.target, match_options);
  MatchQuality quality = EvaluateMatches(data.truth, result.matches);
  MetricMap metrics;
  metrics["fmeasure"] = quality.fmeasure;
  metrics["accuracy"] = quality.accuracy;
  metrics["precision"] = quality.precision;
  metrics["views"] = static_cast<double>(result.pool.candidate_views.size());
  metrics["selected"] = static_cast<double>(result.selected_views.size());
  metrics["match_seconds"] = result.TotalSeconds();
  metrics["standard_match_seconds"] = result.standard_match_seconds;
  metrics["inference_seconds"] = result.inference_seconds;
  metrics["scoring_seconds"] = result.scoring_seconds;
  metrics["selection_seconds"] = result.selection_seconds;
  metrics["threads"] = static_cast<double>(result.threads_used);
  return metrics;
}

/// Baseline retail configuration used across the figures (gamma = 4,
/// tau = 0.5, omega = 0.1 unless the figure sweeps it).
inline RetailOptions DefaultRetail() {
  RetailOptions options;
  options.num_items = 300;
  options.gamma = 4;
  return options;
}

inline ContextMatchOptions DefaultMatch() {
  ContextMatchOptions options;
  options.tau = 0.5;
  options.omega = 0.1;
  options.inference = ViewInferenceKind::kSrcClass;
  options.selection = SelectionPolicy::kQualTable;
  options.early_disjuncts = true;
  options.threads = BenchThreads(/*default_threads=*/1);
  return options;
}

/// Grades runs use the calibrated tau/omega for attribute normalization —
/// the grades base matches are more tenuous than Retail's (Section 5.8), so
/// tau sits at the low edge of the Fig 21 plateau and omega is small enough
/// that the shrinking per-view improvement margin at high sigma decays
/// gradually (see EXPERIMENTS.md) — and LateDisjuncts so one view per exam
/// survives selection.
inline ContextMatchOptions DefaultGradesMatch() {
  ContextMatchOptions options;
  options.tau = 0.45;
  options.omega = 0.025;
  options.inference = ViewInferenceKind::kSrcClass;
  options.selection = SelectionPolicy::kQualTable;
  options.early_disjuncts = false;
  options.threads = BenchThreads(/*default_threads=*/1);
  return options;
}

}  // namespace bench
}  // namespace csm

#endif  // CSM_BENCH_BENCH_UTIL_H_
