// Figure 20: Inventory (Retail) quality vs the StandardMatch pruning
// threshold tau.
//
// Expected shape (Section 5.8): accuracy holds over a band of moderate tau
// values — the inventory base table matches both target tables confidently
// even before splitting — with precision loss below the band (junk pairs
// enter M) and recall loss above it (correct pairs are pruned before their
// conditional versions can be scored: the false-negative effect).

#include "bench/bench_util.h"

int main() {
  using namespace csm;
  using namespace csm::bench;

  const size_t reps = GlobalBenchConfig().Repetitions(5);
  ResultTable table("Fig 20: Retail quality vs tau",
                    {"tau", "fmeasure", "accuracy", "precision"});
  for (double tau : {0.30, 0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.80}) {
    RetailOptions data = DefaultRetail();
    ContextMatchOptions options = DefaultMatch();
    options.tau = tau;
    AggregatedMetrics metrics = RunRepeated(reps, 1100, [&](uint64_t seed) {
      return RetailTrial(data, options, seed);
    });
    table.AddRow({ResultTable::Num(tau, 2),
                  ResultTable::Num(metrics.Mean("fmeasure")),
                  ResultTable::Num(metrics.Mean("accuracy")),
                  ResultTable::Num(metrics.Mean("precision"))});
  }
  table.Print();
  return 0;
}
