// Microbenchmarks of the columnar relational core against the historical
// row-store access paths, on the Fig 15 cardinality workload (Retail,
// ItemType cardinality gamma swept over {2, 4, 6, 8, 10}).
//
// Four operations are measured, each in two implementations:
//
//   condition_scan     per-row Condition::Evaluate over boxed rows vs the
//                      dictionary-code Condition::MatchingPositions scan
//   value_bag          row-major boxed bag assembly vs Table::ValueBag's
//                      column read
//   view_materialize   row-at-a-time AddRow copy of the matching rows vs
//                      TableView::ToTable column gather
//   feature_extract    the ClusteredViewGen (label, evidence) pair walk
//                      over boxed rows vs the dictionary-code reads of
//                      RunCycle's coded fast path
//
// The headline metric is scan_score (condition scan + per-attribute bag
// reads — the candidate-view evaluation inner loop of MatchEngine
// scoring); `speedup` in the JSON is columnar vs row-store for that
// compound op.  Writes BENCH_columnar_scan.json (or argv[1]).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "relational/condition.h"
#include "relational/table_view.h"

namespace {

using namespace csm;
using namespace csm::bench;

/// Best-of-`reps` wall-clock seconds for `op`; `op` returns a size_t that
/// is accumulated into a sink so the work cannot be optimized away.
template <typename Op>
double TimeBest(size_t reps, volatile size_t* sink, Op&& op) {
  double best = 1e300;
  for (size_t rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    *sink = *sink + op();
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double>(stop - start).count());
  }
  return best;
}

/// The historical row-store scan: per-row Condition::Evaluate over boxed
/// rows (exactly what View::MatchingRows did before the columnar core).
std::vector<size_t> RowStoreScan(const Table& table,
                                 const Condition& condition) {
  std::vector<size_t> matching;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (condition.Evaluate(table.schema(), table.row(r))) {
      matching.push_back(r);
    }
  }
  return matching;
}

struct GammaRow {
  size_t gamma = 0;
  size_t rows = 0;
  size_t conditions = 0;
  double scan_row = 0, scan_col = 0;
  double bag_row = 0, bag_col = 0;
  double mat_row = 0, mat_col = 0;
  double feat_row = 0, feat_col = 0;
  double scan_score_row = 0, scan_score_col = 0;
  double speedup = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_columnar_scan.json";
  const size_t reps = GlobalBenchConfig().Repetitions(10);
  volatile size_t sink = 0;

  ResultTable out_table(
      "Micro: columnar core vs row-store access paths (Retail)",
      {"gamma", "rows", "conds", "scan_row", "scan_col", "scan+score_row",
       "scan+score_col", "speedup"});

  std::vector<GammaRow> rows;
  for (size_t gamma : {2u, 4u, 6u, 8u, 10u}) {
    RetailOptions data_options = DefaultRetail();
    data_options.num_items = 2000;
    data_options.gamma = gamma;
    data_options.seed = 7;
    const RetailDataset data = MakeRetailDataset(data_options);
    const Table& table = data.source.tables().front();

    // One Equals condition per ItemType label — the candidate views
    // NaiveInfer proposes on this workload.
    std::vector<Condition> conditions;
    for (const auto& [value, count] : table.ValueCounts("ItemType")) {
      conditions.push_back(Condition::Equals("ItemType", value));
    }
    const std::vector<std::string> attributes = [&] {
      std::vector<std::string> names;
      for (const auto& attr : table.schema().attributes()) {
        names.push_back(attr.name);
      }
      return names;
    }();
    const size_t label_col = table.schema().AttributeIndex("ItemType");
    const size_t evidence_col =
        table.schema().AttributeIndex(attributes.back());
    table.rows();  // Pre-build the row cache: the row-store baseline owned
                   // its rows, so boxing must not count against it.

    GammaRow g;
    g.gamma = gamma;
    g.rows = table.num_rows();
    g.conditions = conditions.size();

    // --- condition_scan ---------------------------------------------------
    g.scan_row = TimeBest(reps, &sink, [&] {
      size_t n = 0;
      for (const Condition& c : conditions) n += RowStoreScan(table, c).size();
      return n;
    });
    g.scan_col = TimeBest(reps, &sink, [&] {
      size_t n = 0;
      for (const Condition& c : conditions) n += c.MatchingPositions(table).size();
      return n;
    });

    // --- value_bag --------------------------------------------------------
    g.bag_row = TimeBest(reps, &sink, [&] {
      size_t n = 0;
      for (const std::string& attr : attributes) {
        const size_t c = table.schema().AttributeIndex(attr);
        std::vector<Value> bag;
        bag.reserve(table.num_rows());
        for (const Row& row : table.rows()) bag.push_back(row[c]);
        n += bag.size();
      }
      return n;
    });
    g.bag_col = TimeBest(reps, &sink, [&] {
      size_t n = 0;
      for (const std::string& attr : attributes) {
        n += table.ValueBag(attr).size();
      }
      return n;
    });

    // --- view_materialize -------------------------------------------------
    g.mat_row = TimeBest(reps, &sink, [&] {
      size_t n = 0;
      for (const Condition& c : conditions) {
        Table copy(table.schema());
        for (size_t r : RowStoreScan(table, c)) copy.AddRow(table.row(r));
        n += copy.num_rows();
      }
      return n;
    });
    g.mat_col = TimeBest(reps, &sink, [&] {
      size_t n = 0;
      for (const Condition& c : conditions) {
        n += TableView(table, c.MatchingPositions(table)).ToTable().num_rows();
      }
      return n;
    });

    // --- feature_extract --------------------------------------------------
    g.feat_row = TimeBest(reps, &sink, [&] {
      size_t n = 0;
      for (const Row& row : table.rows()) {
        if (row[label_col].is_null() || row[evidence_col].is_null()) continue;
        n += row[label_col].ToString().size();
      }
      return n;
    });
    // Mirrors ClusteredViewGen::RunCycle's coded fast path: string columns
    // read dictionary codes (kNullCode == NULL) and resolve the label text
    // through the dictionary; non-string columns fall back to boxed reads.
    g.feat_col = TimeBest(reps, &sink, [&] {
      size_t n = 0;
      const Column& label_column = table.column(label_col);
      const Column& evidence_column = table.column(evidence_col);
      const bool l_coded = label_column.type() == ValueType::kString;
      const bool h_coded = evidence_column.type() == ValueType::kString;
      for (size_t r = 0; r < table.num_rows(); ++r) {
        if (l_coded) {
          const uint32_t code = label_column.codes()[r];
          if (code == kNullCode) continue;
          const bool h_null = h_coded
                                  ? evidence_column.codes()[r] == kNullCode
                                  : evidence_column.IsNull(r);
          if (h_null) continue;
          n += label_column.dictionary().value(code).size();
        } else {
          const Value label = table.ValueAt(r, label_col);
          if (label.is_null() || table.ValueAt(r, evidence_col).is_null()) {
            continue;
          }
          n += label.ToString().size();
        }
      }
      return n;
    });

    // --- scan_score: the candidate-view evaluation inner loop.  The
    // row-store engine materialized every candidate view before reading its
    // bags (ScoreCandidate called View::Materialize, then ValueBag on the
    // copy), so the baseline does exactly that. ------------------------------
    g.scan_score_row = TimeBest(reps, &sink, [&] {
      size_t n = 0;
      for (const Condition& c : conditions) {
        Table copy(table.schema());
        for (size_t r : RowStoreScan(table, c)) copy.AddRow(table.row(r));
        for (const std::string& attr : attributes) {
          n += copy.ValueBag(attr).size();
        }
      }
      return n;
    });
    g.scan_score_col = TimeBest(reps, &sink, [&] {
      size_t n = 0;
      for (const Condition& c : conditions) {
        const TableView view(table, c.MatchingPositions(table));
        for (const std::string& attr : attributes) {
          n += view.ValueBag(attr).size();
        }
      }
      return n;
    });
    g.speedup =
        g.scan_score_col > 0 ? g.scan_score_row / g.scan_score_col : 0.0;

    out_table.AddRow({std::to_string(g.gamma), std::to_string(g.rows),
                      std::to_string(g.conditions),
                      ResultTable::Num(g.scan_row * 1e3, 3),
                      ResultTable::Num(g.scan_col * 1e3, 3),
                      ResultTable::Num(g.scan_score_row * 1e3, 3),
                      ResultTable::Num(g.scan_score_col * 1e3, 3),
                      ResultTable::Num(g.speedup, 2)});
    rows.push_back(g);
  }
  out_table.Print();
  std::printf("(times in the table are milliseconds, best of %zu reps)\n",
              reps);

  double min_speedup = 1e300;
  for (const GammaRow& g : rows) min_speedup = std::min(min_speedup, g.speedup);

  FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"micro_relational\",\n"
               "  \"figure_family\": \"Fig 15 cardinality workload\",\n"
               "  \"workload\": {\"dataset\": \"retail\", \"num_items\": "
               "2000, \"repetitions\": %zu, \"timing\": \"best_of_reps\"},\n"
               "  \"headline\": \"scan_score = candidate-view evaluation "
               "(condition scan + per-attribute bag reads)\",\n"
               "  \"min_scan_score_speedup\": %.2f,\n"
               "  \"rows\": [\n",
               reps, min_speedup);
  for (size_t i = 0; i < rows.size(); ++i) {
    const GammaRow& g = rows[i];
    std::fprintf(
        out,
        "    {\"gamma\": %zu, \"rows\": %zu, \"conditions\": %zu,\n"
        "     \"condition_scan\": {\"row_seconds\": %.6f, \"columnar_seconds\""
        ": %.6f},\n"
        "     \"value_bag\": {\"row_seconds\": %.6f, \"columnar_seconds\": "
        "%.6f},\n"
        "     \"view_materialize\": {\"row_seconds\": %.6f, "
        "\"columnar_seconds\": %.6f},\n"
        "     \"feature_extract\": {\"row_seconds\": %.6f, "
        "\"columnar_seconds\": %.6f},\n"
        "     \"scan_score\": {\"row_seconds\": %.6f, \"columnar_seconds\": "
        "%.6f, \"speedup\": %.2f}}%s\n",
        g.gamma, g.rows, g.conditions, g.scan_row, g.scan_col, g.bag_row,
        g.bag_col, g.mat_row, g.mat_col, g.feat_row, g.feat_col,
        g.scan_score_row, g.scan_score_col, g.speedup,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s (min scan_score speedup %.2fx)\n", json_path.c_str(),
              min_speedup);
  return 0;
}
