// Figure 12: F-measure vs the correlation rho of 3 added chameleon
// attributes (same domain as ItemType), under EarlyDisjuncts, for
// NaiveInfer / SrcClassInfer / TgtClassInfer.
//
// Expected shape (Section 5.3): with EarlyDisjuncts the extra views do not
// fool the matcher until rho becomes very high; the classifier-based
// inferers do at least as well as NaiveInfer.

#include "bench/bench_util.h"

int main() {
  using namespace csm;
  using namespace csm::bench;

  const size_t reps = GlobalBenchConfig().Repetitions(5);
  ResultTable table("Fig 12: FMeasure vs rho (EarlyDisjuncts)",
                    {"rho", "F_naive", "F_src", "F_tgt"});
  for (double rho : {0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.99}) {
    RetailOptions data = DefaultRetail();
    data.correlated_attributes = 3;
    data.rho = rho;
    std::vector<std::string> row = {ResultTable::Num(rho, 2)};
    for (ViewInferenceKind kind : {ViewInferenceKind::kNaive,
                                   ViewInferenceKind::kSrcClass,
                                   ViewInferenceKind::kTgtClass}) {
      ContextMatchOptions options = DefaultMatch();
      options.inference = kind;
      options.early_disjuncts = true;
      AggregatedMetrics metrics = RunRepeated(reps, 300, [&](uint64_t seed) {
        return RetailTrial(data, options, seed);
      });
      row.push_back(ResultTable::Num(metrics.Mean("fmeasure")));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
