// Load generator for the MatchService daemon: a closed-loop fleet of
// client threads replays thousands of simulated clients with mixed schemas
// (retail variants at different sizes/gammas plus grades variants) and
// mixed modes (context / conjunctive / target-context) against one
// service, then reports sustained QPS and the p50/p95/p99 tail latency the
// clients observed — straight from the service's MetricsRegistry, the same
// numbers a production deployment would export.
//
// Knobs (shared BenchConfig): CSM_BENCH_CLIENTS concurrent client threads
// (default 16), CSM_BENCH_REQUESTS total requests (default 2000, one per
// simulated client), CSM_BENCH_THREADS engine workers (default all cores).
//
// Writes a machine-readable record to BENCH_service_load.json (or argv[1]).
//
// What to expect: the dispatcher serializes engine runs, so QPS is bounded
// by mean run time; the hot session cache (8 entries) covers the 8 distinct
// (source, target) pairs, so phase 1 amortizes away and tail latency is
// dominated by inference + scoring.  Identical concurrent requests
// deduplicate — the "deduplicated" counter shows how many rides were free.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "exec/thread_pool.h"
#include "service/match_service.h"

int main(int argc, char** argv) {
  using namespace csm;
  using namespace csm::bench;

  const std::string json_path = argc > 1 ? argv[1] : "BENCH_service_load.json";
  const BenchConfig& config = GlobalBenchConfig();
  const size_t clients = config.clients > 0 ? config.clients : 16;
  const size_t requests = config.requests > 0 ? config.requests : 2000;
  const size_t engine_threads = config.Threads(/*default_threads=*/0);

  // Eight distinct workloads: four retail variants (size and gamma sweep)
  // and four grades variants.  Every simulated client is pinned to one
  // workload and one mode, so the request mix is deterministic regardless
  // of thread interleaving.
  struct Workload {
    Database source{"source"};
    Database target{"target"};
    std::string name;
  };
  std::vector<Workload> workloads;
  for (size_t k = 0; k < 4; ++k) {
    RetailOptions options;
    options.num_items = 80 + 40 * k;
    options.gamma = k < 2 ? 2 : 4;
    options.seed = 100 + k;
    RetailDataset data = MakeRetailDataset(options);
    Workload w;
    w.source = std::move(data.source);
    w.target = std::move(data.target);
    w.name = "retail-" + std::to_string(options.num_items) + "-g" +
             std::to_string(options.gamma);
    workloads.push_back(std::move(w));
  }
  for (size_t k = 0; k < 4; ++k) {
    GradesOptions options;
    options.seed = 200 + k;
    GradesDataset data = MakeGradesDataset(options);
    Workload w;
    w.source = std::move(data.source);
    w.target = std::move(data.target);
    w.name = "grades-" + std::to_string(k);
    workloads.push_back(std::move(w));
  }

  ServiceOptions options;
  options.engine = DefaultMatch();
  options.engine.threads = engine_threads;
  // Closed loop: at most `clients` requests are outstanding, so the queue
  // bound never rejects — this bench measures throughput and tails, not
  // admission (service_test covers rejection paths deterministically).
  options.max_queue = clients + 1;
  MatchService service(options);

  std::printf(
      "service load: %zu client threads, %zu simulated clients/requests, "
      "%zu workloads, engine threads=%zu\n",
      clients, requests, workloads.size(), engine_threads);

  std::atomic<size_t> next{0};
  std::atomic<size_t> failures{0};
  Stopwatch wall;
  std::vector<std::thread> fleet;
  fleet.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    fleet.emplace_back([&] {
      for (;;) {
        const size_t id = next.fetch_add(1);
        if (id >= requests) return;
        const Workload& w = workloads[id % workloads.size()];
        MatchRequest request;
        request.tenant = "tenant-" + std::to_string(id % 4);
        request.deadline_ms = 60000;
        switch (id % 3) {
          case 0:
            request.mode = MatchMode::kContext;
            break;
          case 1:
            request.mode = MatchMode::kConjunctive;
            request.max_stages = 2;
            break;
          default:
            request.mode = MatchMode::kTargetContext;
            break;
        }
        request.source = BorrowDatabase(w.source);
        request.target = BorrowDatabase(w.target);
        MatchResponse response = service.Call(request);
        if (!response.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : fleet) t.join();
  const double wall_seconds = wall.Seconds();
  service.Stop();

  const obs::PhaseReport report = service.metrics().Snapshot();
  const obs::HistogramSummary total = report.Histogram("service.total_seconds");
  const obs::HistogramSummary queue = report.Histogram("service.queue_seconds");
  const obs::HistogramSummary run = report.Histogram("service.run_seconds");
  const uint64_t completed = report.Count("service.completed");
  const uint64_t deduplicated = report.Count("service.deduplicated");
  const double qps = wall_seconds > 0 ? requests / wall_seconds : 0.0;

  std::printf("\n%zu requests in %.2fs -> %.1f QPS sustained (%zu failures)\n",
              requests, wall_seconds, qps, failures.load());
  std::printf("latency   p50 %.4fs  p95 %.4fs  p99 %.4fs  max %.4fs\n",
              total.p50, total.p95, total.p99, total.max);
  std::printf("  queue   p50 %.4fs  p95 %.4fs\n", queue.p50, queue.p95);
  std::printf("  run     p50 %.4fs  p95 %.4fs\n", run.p50, run.p95);
  std::printf(
      "engine runs %llu, deduplicated %llu, session cache hits/misses "
      "%llu/%llu\n",
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(deduplicated),
      static_cast<unsigned long long>(report.Count("engine.session_cache_hits")),
      static_cast<unsigned long long>(
          report.Count("engine.session_cache_misses")));

  FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"service_load\",\n"
               "  \"workload\": {\"clients\": %zu, \"requests\": %zu,"
               " \"distinct_workloads\": %zu, \"modes\":"
               " [\"context\", \"conjunctive\", \"target_context\"],"
               " \"engine_threads\": %zu},\n"
               "  \"hardware_concurrency\": %zu,\n"
               "  \"wall_seconds\": %.3f,\n"
               "  \"qps_sustained\": %.2f,\n"
               "  \"failures\": %zu,\n"
               "  \"latency_seconds\": {\"p50\": %.5f, \"p95\": %.5f,"
               " \"p99\": %.5f, \"mean\": %.5f, \"max\": %.5f},\n"
               "  \"queue_seconds\": {\"p50\": %.5f, \"p95\": %.5f,"
               " \"p99\": %.5f},\n"
               "  \"run_seconds\": {\"p50\": %.5f, \"p95\": %.5f,"
               " \"p99\": %.5f},\n"
               "  \"counters\": {\"completed\": %llu, \"deduplicated\": %llu,"
               " \"session_cache_hits\": %llu, \"session_cache_misses\":"
               " %llu}\n"
               "}\n",
               clients, requests, workloads.size(), engine_threads,
               exec::ThreadPool::HardwareThreads(), wall_seconds, qps,
               failures.load(), total.p50, total.p95, total.p99, total.Mean(),
               total.max, queue.p50, queue.p95, queue.p99, run.p50, run.p95,
               run.p99, static_cast<unsigned long long>(completed),
               static_cast<unsigned long long>(deduplicated),
               static_cast<unsigned long long>(
                   report.Count("engine.session_cache_hits")),
               static_cast<unsigned long long>(
                   report.Count("engine.session_cache_misses")));
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());
  return failures.load() == 0 ? 0 : 1;
}
