// Figure 14: F-measure vs the ItemType cardinality gamma under
// LateDisjuncts, target Ryan_Eyers, for NaiveInfer / SrcClassInfer /
// TgtClassInfer.
//
// Expected shape (Section 5.4): LateDisjuncts' F-measure degrades as gamma
// grows (each per-value view must clear omega on its own and the union is
// increasingly fragmented), while EarlyDisjuncts (shown for reference)
// stays roughly constant.

#include "bench/bench_util.h"

int main() {
  using namespace csm;
  using namespace csm::bench;

  const size_t reps = GlobalBenchConfig().Repetitions(5);
  ResultTable table(
      "Fig 14: FMeasure vs gamma (LateDisjuncts, Ryan_Eyers)",
      {"gamma", "F_naive_late", "F_src_late", "F_tgt_late", "F_src_early"});
  for (size_t gamma : {2u, 4u, 6u, 8u, 10u}) {
    RetailOptions data = DefaultRetail();
    data.gamma = gamma;
    std::vector<std::string> row = {std::to_string(gamma)};
    for (ViewInferenceKind kind : {ViewInferenceKind::kNaive,
                                   ViewInferenceKind::kSrcClass,
                                   ViewInferenceKind::kTgtClass}) {
      ContextMatchOptions options = DefaultMatch();
      options.inference = kind;
      options.early_disjuncts = false;
      AggregatedMetrics metrics = RunRepeated(reps, 500, [&](uint64_t seed) {
        return RetailTrial(data, options, seed);
      });
      row.push_back(ResultTable::Num(metrics.Mean("fmeasure")));
    }
    // Reference series: EarlyDisjuncts with SrcClassInfer.
    ContextMatchOptions early = DefaultMatch();
    early.early_disjuncts = true;
    AggregatedMetrics early_metrics =
        RunRepeated(reps, 500, [&](uint64_t seed) {
          return RetailTrial(data, early, seed);
        });
    row.push_back(ResultTable::Num(early_metrics.Mean("fmeasure")));
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
