// Figure 16: F-measure vs schema size (n added noise attributes per table,
// plus n/4 extra ItemType-domain categorical attributes on the source), for
// gamma in {2, 4, 8}, target Ryan_Eyers, SrcClassInfer + EarlyDisjuncts.
//
// Expected shape (Section 5.5): accuracy erodes as the schema grows — extra
// non-categorical attributes first cause mismatches, extra categorical
// attributes then produce spurious candidate views — and larger gamma makes
// each candidate view smaller and noisier.

#include "bench/bench_util.h"

int main() {
  using namespace csm;
  using namespace csm::bench;

  const size_t reps = GlobalBenchConfig().Repetitions(3);
  ResultTable table(
      "Fig 16: FMeasure vs schema size (SrcClassInfer, EarlyDisjuncts)",
      {"extra_attrs", "F_gamma2", "F_gamma4", "F_gamma8"});
  for (size_t n : {0u, 4u, 8u, 12u, 16u}) {
    std::vector<std::string> row = {std::to_string(n)};
    for (size_t gamma : {2u, 4u, 8u}) {
      RetailOptions data = DefaultRetail();
      data.num_items = 200;
      data.gamma = gamma;
      data.extra_noncategorical = n;
      data.extra_categorical = n / 4;
      ContextMatchOptions options = DefaultMatch();
      AggregatedMetrics metrics = RunRepeated(reps, 700, [&](uint64_t seed) {
        return RetailTrial(data, options, seed);
      });
      row.push_back(ResultTable::Num(metrics.Mean("fmeasure")));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
