// Microbenchmarks of the interned token kernel (text/gram.h) against the
// map-of-strings baselines it replaced, on the Fig 19 grades workload
// (200 students x 5 exams; the evidence attribute "name" repeats each of
// the 200 distinct names five times — exactly the distinct-value reuse the
// classifier memo exploits).
//
// Four operations are measured, each in two implementations:
//
//   tokenize      QGrams heap-string tokenization vs AppendPackedQGrams
//                 (packed uint32 gram ids, zero per-gram allocations)
//   profile_build TokenProfile (std::map) accumulation vs
//                 GramProfileBuilder -> flat sorted (id, count) entries
//   nb_train      map-of-strings Naive Bayes training vs
//                 NaiveBayesClassifier::TrainCoded (per-code token memo)
//   nb_classify   per-call map NB scoring vs ClassifyCoded (finalized
//                 models + per-distinct-input memo)
//
// All kernel paths produce bit-identical scores to the baselines (enforced
// by FuzzTokenKernelEquivalence); this bench records the time.  Writes
// BENCH_token_kernel.json (or argv[1]).  With CSM_BENCH_REQUIRE_SPEEDUP=1
// the process fails unless every op is >= 1.0x and nb_classify >= 3.0x —
// the CI smoke regression gate.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "ml/naive_bayes.h"
#include "text/gram.h"
#include "text/profile.h"
#include "text/tokenizer.h"

namespace {

using namespace csm;
using namespace csm::bench;

/// Best-of-`reps` wall-clock seconds for `op`; `op` returns a size_t that
/// is accumulated into a sink so the work cannot be optimized away.
template <typename Op>
double TimeBest(size_t reps, volatile size_t* sink, Op&& op) {
  double best = 1e300;
  for (size_t rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    *sink = *sink + op();
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double>(stop - start).count());
  }
  return best;
}

/// The pre-kernel map-of-strings multinomial NB — per-label gram-string
/// count maps, per-call log sums — kept as the timing baseline.
class StringMapNaiveBayes {
 public:
  explicit StringMapNaiveBayes(size_t q, double smoothing = 1.0)
      : q_(q), smoothing_(smoothing) {}

  void Train(const std::string& text, const std::string& label) {
    LabelStats& stats = labels_[label];
    ++stats.example_count;
    ++total_examples_;
    for (const std::string& gram : QGrams(text, q_)) {
      stats.token_counts[gram] += 1.0;
      stats.token_total += 1.0;
      vocabulary_.insert(gram);
    }
  }

  size_t TrainingSize() const { return total_examples_; }

  std::string Classify(const std::string& text) const {
    if (labels_.empty()) return "";
    const std::string* best = nullptr;
    double best_score = -std::numeric_limits<double>::infinity();
    size_t best_frequency = 0;
    const double num_labels = static_cast<double>(labels_.size());
    const double vocab = static_cast<double>(vocabulary_.size());
    const std::vector<std::string> grams = QGrams(text, q_);
    for (const auto& [label, stats] : labels_) {
      double score = std::log(
          (static_cast<double>(stats.example_count) + smoothing_) /
          (static_cast<double>(total_examples_) + smoothing_ * num_labels));
      const double denom = stats.token_total + smoothing_ * (vocab + 1.0);
      for (const std::string& gram : grams) {
        auto it = stats.token_counts.find(gram);
        const double count =
            it == stats.token_counts.end() ? 0.0 : it->second;
        score += std::log((count + smoothing_) / denom);
      }
      if (score > best_score ||
          (score == best_score && stats.example_count > best_frequency)) {
        best = &label;
        best_score = score;
        best_frequency = stats.example_count;
      }
    }
    return best == nullptr ? "" : *best;
  }

 private:
  struct LabelStats {
    size_t example_count = 0;
    double token_total = 0.0;
    std::map<std::string, double> token_counts;
  };

  size_t q_;
  double smoothing_;
  size_t total_examples_ = 0;
  std::map<std::string, LabelStats> labels_;
  std::set<std::string> vocabulary_;
};

struct OpRow {
  const char* op;
  double baseline = 0;
  double kernel = 0;
  double speedup = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_token_kernel.json";
  const size_t reps = GlobalBenchConfig().Repetitions(10);
  volatile size_t sink = 0;

  GradesOptions data_options;
  data_options.seed = 7;
  const GradesDataset data = MakeGradesDataset(data_options);
  const Table& table = data.source.tables().front();
  const size_t name_col = table.schema().AttributeIndex("name");
  const size_t exam_col = table.schema().AttributeIndex("examNum");

  // The RunCycle evidence stream: rendered name + exam-group label per
  // non-null row, plus the aligned dictionary codes for the coded paths.
  const Column& name_column = table.column(name_col);
  const StringDictionary& dict = name_column.dictionary();
  std::vector<std::string> names, labels;
  std::vector<uint32_t> codes;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const uint32_t code = name_column.codes()[r];
    if (code == kNullCode || table.ValueAt(r, exam_col).is_null()) continue;
    names.push_back(dict.value(code));
    labels.push_back(table.ValueAt(r, exam_col).ToString());
    codes.push_back(code);
  }
  std::set<std::string> distinct(names.begin(), names.end());
  std::printf("grades workload: %zu rows, %zu distinct names, %zu labels\n",
              names.size(), distinct.size(),
              std::set<std::string>(labels.begin(), labels.end()).size());

  OpRow tokenize{"tokenize"}, profile{"profile_build"}, train{"nb_train"},
      classify{"nb_classify"};

  // --- tokenize -----------------------------------------------------------
  tokenize.baseline = TimeBest(reps, &sink, [&] {
    size_t n = 0;
    for (const std::string& name : names) n += QGrams(name, 3).size();
    return n;
  });
  tokenize.kernel = TimeBest(reps, &sink, [&] {
    size_t n = 0;
    std::string scratch;
    std::vector<GramId> ids;
    for (const std::string& name : names) {
      ids.clear();
      AppendPackedQGrams(name, 3, &scratch, &ids);
      n += ids.size();
    }
    return n;
  });

  // --- profile_build ------------------------------------------------------
  profile.baseline = TimeBest(reps, &sink, [&] {
    TokenProfile p;
    for (const std::string& name : names) p.AddAll(QGrams(name, 3));
    return p.num_distinct();
  });
  profile.kernel = TimeBest(reps, &sink, [&] {
    GramProfileBuilder builder;
    for (const std::string& name : names) builder.AddText(name, 3);
    return builder.Build().num_distinct();
  });

  // --- nb_train -----------------------------------------------------------
  train.baseline = TimeBest(reps, &sink, [&] {
    StringMapNaiveBayes nb(3);
    for (size_t i = 0; i < names.size(); ++i) nb.Train(names[i], labels[i]);
    return nb.TrainingSize();
  });
  train.kernel = TimeBest(reps, &sink, [&] {
    NaiveBayesClassifier nb(3);
    for (size_t i = 0; i < codes.size(); ++i) {
      nb.TrainCoded(dict, codes[i], labels[i]);
    }
    return nb.TrainingSize();
  });

  // --- nb_classify --------------------------------------------------------
  // Both classifiers are trained once outside the timed region; the kernel
  // side classifies through ClassifyCoded so repeated names hit the
  // per-distinct-input memo, exactly as RunCycle's doTesting loop does.
  StringMapNaiveBayes baseline_nb(3);
  for (size_t i = 0; i < names.size(); ++i) {
    baseline_nb.Train(names[i], labels[i]);
  }
  NaiveBayesClassifier kernel_nb(3);
  for (size_t i = 0; i < codes.size(); ++i) {
    kernel_nb.TrainCoded(dict, codes[i], labels[i]);
  }
  classify.baseline = TimeBest(reps, &sink, [&] {
    size_t n = 0;
    for (const std::string& name : names) {
      n += baseline_nb.Classify(name).size();
    }
    return n;
  });
  classify.kernel = TimeBest(reps, &sink, [&] {
    size_t n = 0;
    for (uint32_t code : codes) {
      n += kernel_nb.ClassifyCoded(dict, code).size();
    }
    return n;
  });

  std::vector<OpRow*> ops = {&tokenize, &profile, &train, &classify};
  ResultTable out_table(
      "Micro: token kernel vs map-of-strings baselines (Grades, Fig 19)",
      {"op", "baseline_ms", "kernel_ms", "speedup"});
  for (OpRow* op : ops) {
    op->speedup = op->kernel > 0 ? op->baseline / op->kernel : 0.0;
    out_table.AddRow({op->op, ResultTable::Num(op->baseline * 1e3, 3),
                      ResultTable::Num(op->kernel * 1e3, 3),
                      ResultTable::Num(op->speedup, 2)});
  }
  out_table.Print();
  std::printf("(times in the table are milliseconds, best of %zu reps)\n",
              reps);

  double min_speedup = 1e300;
  for (const OpRow* op : ops) min_speedup = std::min(min_speedup, op->speedup);

  const size_t hardware = std::thread::hardware_concurrency();
  if (!SpeedupRecordWriteAllowed(json_path, hardware)) return 1;
  FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"micro_text\",\n"
               "  \"figure_family\": \"Fig 19 grades workload\",\n"
               "  \"hardware_concurrency\": %zu,\n"
               "  \"workload\": {\"dataset\": \"grades\", \"rows\": %zu, "
               "\"distinct_values\": %zu, \"repetitions\": %zu, \"timing\": "
               "\"best_of_reps\"},\n"
               "  \"headline\": \"nb_classify = ClusteredViewGen doTesting "
               "inner loop (tokenize + log-sum per row vs per-distinct-value "
               "memo)\",\n"
               "  \"min_speedup\": %.2f,\n"
               "  \"nb_classify_speedup\": %.2f,\n"
               "  \"ops\": [\n",
               hardware, names.size(), distinct.size(), reps, min_speedup,
               classify.speedup);
  for (size_t i = 0; i < ops.size(); ++i) {
    std::fprintf(out,
                 "    {\"op\": \"%s\", \"baseline_seconds\": %.6f, "
                 "\"kernel_seconds\": %.6f, \"speedup\": %.2f}%s\n",
                 ops[i]->op, ops[i]->baseline, ops[i]->kernel,
                 ops[i]->speedup, i + 1 < ops.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s (min speedup %.2fx, nb_classify %.2fx)\n",
              json_path.c_str(), min_speedup, classify.speedup);

  const char* require = std::getenv("CSM_BENCH_REQUIRE_SPEEDUP");
  if (require != nullptr && *require != '\0' && *require != '0') {
    if (min_speedup < 1.0 || classify.speedup < 3.0) {
      std::fprintf(stderr,
                   "FAIL: kernel speedup regression (min %.2fx, nb_classify "
                   "%.2fx; required min >= 1.0 and nb_classify >= 3.0)\n",
                   min_speedup, classify.speedup);
      return 1;
    }
    std::printf("speedup gate passed (min >= 1.0, nb_classify >= 3.0)\n");
  }
  return 0;
}
