// Figure 15: runtime of EarlyDisjuncts relative to LateDisjuncts as the
// ItemType cardinality gamma grows, with NaiveInfer (whose early-disjunct
// condition space is the full subset lattice).
//
// Expected shape (Section 5.4): EarlyDisjuncts' runtime grows exponentially
// in gamma (2^gamma candidate subset conditions) while LateDisjuncts grows
// only linearly, so the ratio explodes.

#include "bench/bench_util.h"

int main() {
  using namespace csm;
  using namespace csm::bench;

  const size_t reps = GlobalBenchConfig().Repetitions(3);
  ResultTable table(
      "Fig 15: EarlyDisjuncts runtime relative to LateDisjuncts (NaiveInfer)",
      {"gamma", "early_seconds", "late_seconds", "early/late"});
  for (size_t gamma : {2u, 4u, 6u, 8u, 10u}) {
    RetailOptions data = DefaultRetail();
    data.gamma = gamma;
    ContextMatchOptions early = DefaultMatch();
    early.inference = ViewInferenceKind::kNaive;
    early.early_disjuncts = true;
    ContextMatchOptions late = early;
    late.early_disjuncts = false;
    AggregatedMetrics early_metrics =
        RunRepeated(reps, 600, [&](uint64_t seed) {
          return RetailTrial(data, early, seed);
        });
    AggregatedMetrics late_metrics =
        RunRepeated(reps, 600, [&](uint64_t seed) {
          return RetailTrial(data, late, seed);
        });
    double es = early_metrics.Mean("match_seconds");
    double ls = late_metrics.Mean("match_seconds");
    table.AddRow({std::to_string(gamma), ResultTable::Num(es),
                  ResultTable::Num(ls),
                  ResultTable::Num(ls > 0 ? es / ls : 0.0, 2)});
  }
  table.Print();
  return 0;
}
