// The million-row scale sweep (DESIGN.md "Streaming ingest & sampling"):
// generates a scale retail inventory, writes it as CSV, then measures
//
//   1. ingest  — streaming (mmap + chunked parallel parse) wall-clock per
//                thread count, vs the legacy slurp + serial parse, with
//                rows/sec and speedup-vs-1-thread;
//   2. chunks  — chunk-size sensitivity at the best thread count (the
//                autotuned size should sit near the sweep's minimum);
//   3. training — TableMatchSession build time at full table size vs a
//                quarter-size table, both capped at the same
//                max_training_rows: the ratio should hover near 1.0
//                because training cost follows the cap, not the table.
//
// Writes BENCH_scale_sweep.json (or argv[1]).  The speedup-record guard
// applies: a record from a bigger machine is not overwritten unless
// CSM_BENCH_FORCE=1.  Knobs: CSM_BENCH_SCALE_ROWS (default 1e6),
// CSM_BENCH_REPS (default 3).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/scale_gen.h"
#include "exec/thread_pool.h"
#include "match/session.h"
#include "match/matchers.h"
#include "relational/csv.h"

namespace {

using namespace csm;
using namespace csm::bench;

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Best-of-N wall-clock of `fn` (min absorbs scheduling noise better than
/// mean for short IO-bound runs).
template <typename Fn>
double BestOf(size_t reps, const Fn& fn) {
  double best = 0.0;
  for (size_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double elapsed = Seconds(t0);
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

double SessionBuildSeconds(const Database& source_db, const Database& target,
                           size_t max_training_rows, size_t reps) {
  const Table& source = source_db.tables().front();
  MatchOptions options;
  options.max_training_rows = max_training_rows;
  return BestOf(reps, [&] {
    TableMatchSession session(source, target, DefaultMatcherSuite(), options);
    (void)session;
  });
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_scale_sweep.json";
  const size_t hardware = exec::ThreadPool::HardwareThreads();
  const size_t rows = GlobalBenchConfig().scale_rows > 0
                          ? GlobalBenchConfig().scale_rows
                          : 1'000'000;
  const size_t reps = GlobalBenchConfig().Repetitions(3);

  if (!SpeedupRecordWriteAllowed(json_path, hardware)) return 4;
  if (hardware == 1) {
    std::fprintf(stderr,
                 "*** WARNING: 1 hardware thread; parallel-ingest rows are "
                 "overhead measurements only.\n");
  }

  // ---- Generate and write the instance --------------------------------
  std::printf("generating scale retail instance (%zu rows)...\n", rows);
  auto t0 = std::chrono::steady_clock::now();
  ScaleRetailOptions gen;
  gen.source_rows = rows;
  gen.target_rows_per_table = std::max<size_t>(1, rows / 10);
  gen.threads = 0;
  RetailDataset data = MakeScaleRetailDataset(gen);
  const double gen_seconds = Seconds(t0);

  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "csm_scale_sweep";
  fs::create_directories(dir);
  const Table& inventory = data.source.tables().front();
  const std::string csv_path = (dir / "inventory.csv").string();
  t0 = std::chrono::steady_clock::now();
  if (!WriteCsvFile(inventory, csv_path).ok()) {
    std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
    return 1;
  }
  const double write_seconds = Seconds(t0);
  const size_t file_bytes = fs::file_size(dir / "inventory.csv");
  std::printf("generated in %.2fs, wrote %zu bytes in %.2fs\n\n", gen_seconds,
              file_bytes, write_seconds);

  // ---- 1. Ingest thread sweep ------------------------------------------
  const double legacy_seconds = BestOf(reps, [&] {
    auto loaded = ReadCsvFile(inventory.schema(), csv_path);
    if (!loaded.ok()) std::abort();
  });

  std::vector<size_t> thread_counts = {1, 2, 4};
  if (hardware > 4) thread_counts.push_back(hardware);

  ResultTable ingest_table(
      "Scale: streaming CSV ingest (vs legacy slurp + serial parse)",
      {"threads", "seconds", "rows_per_sec", "per_thread", "vs_1thread",
       "vs_legacy"});
  struct IngestRow {
    size_t threads;
    double seconds, rows_per_sec, speedup_vs_serial, speedup_vs_legacy;
    size_t chunks;
    size_t chunk_bytes;
  };
  std::vector<IngestRow> ingest_rows;
  double one_thread_seconds = 0.0;
  for (size_t threads : thread_counts) {
    CsvIngestOptions ingest;
    ingest.threads = threads;
    CsvIngestStats stats;
    const double seconds = BestOf(reps, [&] {
      stats = CsvIngestStats();
      auto loaded =
          ReadCsvFileStreaming(inventory.schema(), csv_path, ingest, &stats);
      if (!loaded.ok() || loaded.value().num_rows() != rows) std::abort();
    });
    if (threads == 1) one_thread_seconds = seconds;
    IngestRow row;
    row.threads = threads;
    row.seconds = seconds;
    row.rows_per_sec = seconds > 0 ? static_cast<double>(rows) / seconds : 0;
    row.speedup_vs_serial = seconds > 0 ? one_thread_seconds / seconds : 0;
    row.speedup_vs_legacy = seconds > 0 ? legacy_seconds / seconds : 0;
    row.chunks = stats.chunks;
    row.chunk_bytes = stats.chunk_bytes;
    ingest_rows.push_back(row);
    ingest_table.AddRow(
        {std::to_string(threads), ResultTable::Num(row.seconds),
         ResultTable::Num(row.rows_per_sec, 0),
         ResultTable::Num(row.rows_per_sec /
                              static_cast<double>(threads), 0),
         ResultTable::Num(row.speedup_vs_serial, 2),
         ResultTable::Num(row.speedup_vs_legacy, 2)});
  }
  ingest_table.Print();
  std::printf("legacy loader: %.3fs\n\n", legacy_seconds);

  // ---- 2. Chunk-size sweep ---------------------------------------------
  const size_t sweep_threads = std::min<size_t>(hardware, 4);
  ResultTable chunk_table("Scale: chunk-size sensitivity",
                          {"chunk_bytes", "seconds", "chunks"});
  struct ChunkRow {
    size_t chunk_bytes;
    double seconds;
    size_t chunks;
    bool autotuned;
  };
  std::vector<ChunkRow> chunk_rows;
  const std::vector<size_t> chunk_sizes = {256u << 10, 1u << 20, 4u << 20,
                                           /*autotune=*/0};
  for (size_t chunk_bytes : chunk_sizes) {
    CsvIngestOptions ingest;
    ingest.threads = sweep_threads;
    ingest.chunk_bytes = chunk_bytes;
    CsvIngestStats stats;
    const double seconds = BestOf(reps, [&] {
      stats = CsvIngestStats();
      auto loaded =
          ReadCsvFileStreaming(inventory.schema(), csv_path, ingest, &stats);
      if (!loaded.ok()) std::abort();
    });
    chunk_rows.push_back(
        {stats.chunk_bytes, seconds, stats.chunks, chunk_bytes == 0});
    chunk_table.AddRow({std::to_string(stats.chunk_bytes) +
                            (chunk_bytes == 0 ? " (auto)" : ""),
                        ResultTable::Num(seconds),
                        std::to_string(stats.chunks)});
  }
  chunk_table.Print();
  std::printf("\n");

  // ---- 3. Training-cost independence -----------------------------------
  const size_t cap = 2000;
  Database quarter("source");
  {
    PosList prefix(rows / 4);
    for (size_t i = 0; i < prefix.size(); ++i) {
      prefix[i] = static_cast<RowId>(i);
    }
    quarter.AddTable(inventory.SelectRows(prefix));
  }
  const double full_seconds =
      SessionBuildSeconds(data.source, data.target, cap, reps);
  const double quarter_seconds =
      SessionBuildSeconds(quarter, data.target, cap, reps);
  const double ratio =
      quarter_seconds > 0 ? full_seconds / quarter_seconds : 0.0;
  std::printf(
      "session build @cap=%zu: full (%zu rows) %.3fs, quarter (%zu rows) "
      "%.3fs, ratio %.2f (≈1.0 = cost independent of table size)\n",
      cap, rows, full_seconds, rows / 4, quarter_seconds, ratio);

  // ---- JSON -------------------------------------------------------------
  FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"scale_sweep\",\n"
               "  \"workload\": {\"dataset\": \"scale_retail\","
               " \"source_rows\": %zu, \"file_bytes\": %zu,"
               " \"repetitions\": %zu},\n"
               "  \"hardware_concurrency\": %zu,\n"
               "  \"datagen_seconds\": %.3f,\n"
               "  \"legacy_ingest_seconds\": %.4f,\n"
               "  \"ingest\": [\n",
               rows, file_bytes, reps, hardware, gen_seconds, legacy_seconds);
  for (size_t i = 0; i < ingest_rows.size(); ++i) {
    const IngestRow& r = ingest_rows[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"seconds\": %.4f,"
                 " \"rows_per_sec\": %.0f, \"rows_per_sec_per_thread\": %.0f,"
                 " \"chunks\": %zu, \"chunk_bytes\": %zu,"
                 " \"speedup_vs_1thread\": %.3f,"
                 " \"speedup_vs_legacy\": %.3f}%s\n",
                 r.threads, r.seconds, r.rows_per_sec,
                 r.rows_per_sec / static_cast<double>(r.threads), r.chunks,
                 r.chunk_bytes, r.speedup_vs_serial, r.speedup_vs_legacy,
                 i + 1 < ingest_rows.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"chunk_sweep_threads\": %zu,\n"
               "  \"chunk_sweep\": [\n",
               sweep_threads);
  for (size_t i = 0; i < chunk_rows.size(); ++i) {
    const ChunkRow& r = chunk_rows[i];
    std::fprintf(out,
                 "    {\"chunk_bytes\": %zu, \"seconds\": %.4f,"
                 " \"chunks\": %zu, \"autotuned\": %s}%s\n",
                 r.chunk_bytes, r.seconds, r.chunks,
                 r.autotuned ? "true" : "false",
                 i + 1 < chunk_rows.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"training\": {\"max_training_rows\": %zu,"
               " \"full_rows\": %zu, \"full_seconds\": %.4f,"
               " \"quarter_rows\": %zu, \"quarter_seconds\": %.4f,"
               " \"full_over_quarter_ratio\": %.3f}\n"
               "}\n",
               cap, rows, full_seconds, rows / 4, quarter_seconds, ratio);
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());

  std::error_code ec;
  fs::remove_all(dir, ec);
  return 0;
}
