// Micro-benchmarks (google-benchmark): matcher scoring throughput, session
// construction, restricted-bag rescoring, and the confidence-blend
// ablation called out in DESIGN.md.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "datagen/retail_gen.h"
#include "match/matchers.h"
#include "match/session.h"

namespace csm {
namespace {

RetailDataset& SharedData() {
  static RetailDataset* data = [] {
    RetailOptions options;
    options.num_items = 400;
    options.seed = 77;
    return new RetailDataset(MakeRetailDataset(options));
  }();
  return *data;
}

void BM_QGramMatcherScore(benchmark::State& state) {
  const Table& inv = SharedData().source.GetTable("inventory");
  const Table& book = SharedData().target.GetTable("Book");
  AttributeSample source = AttributeSample::FromTable(inv, "Title");
  AttributeSample target = AttributeSample::FromTable(book, "BookTitle");
  // Warm the profile caches so the loop measures similarity only.
  source.QGramProfile();
  target.QGramProfile();
  QGramMatcher matcher;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.Score(source, target));
  }
}
BENCHMARK(BM_QGramMatcherScore);

void BM_QGramProfileBuild(benchmark::State& state) {
  const Table& inv = SharedData().source.GetTable("inventory");
  for (auto _ : state) {
    AttributeSample source = AttributeSample::FromTable(inv, "Title");
    benchmark::DoNotOptimize(source.QGramProfile().total());
  }
}
BENCHMARK(BM_QGramProfileBuild);

void BM_NumericMatcherScore(benchmark::State& state) {
  const Table& inv = SharedData().source.GetTable("inventory");
  const Table& book = SharedData().target.GetTable("Book");
  AttributeSample source = AttributeSample::FromTable(inv, "Price");
  AttributeSample target = AttributeSample::FromTable(book, "ListPrice");
  source.NumericStats();
  target.NumericStats();
  NumericMatcher matcher;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.Score(source, target));
  }
}
BENCHMARK(BM_NumericMatcherScore);

void BM_SessionConstruction(benchmark::State& state) {
  const RetailDataset& data = SharedData();
  MatchOptions options;
  options.blend_raw_score = state.range(0) != 0;
  for (auto _ : state) {
    TableMatchSession session(data.source.GetTable("inventory"), data.target,
                              DefaultMatcherSuite(), options);
    benchmark::DoNotOptimize(session.AcceptedMatches(0.5).size());
  }
}
// Ablation: arg 1 = blended confidence (default), arg 0 = pure Phi(z).
BENCHMARK(BM_SessionConstruction)->Arg(1)->Arg(0);

void BM_ScoreRestricted(benchmark::State& state) {
  const RetailDataset& data = SharedData();
  const Table& inv = data.source.GetTable("inventory");
  TableMatchSession session(inv, data.target, DefaultMatcherSuite());
  // Books-only title bag.
  std::vector<Value> restricted;
  for (size_t r = 0; r < inv.num_rows(); ++r) {
    if (inv.at(r, "ItemType") == data.book_labels[0]) {
      restricted.push_back(inv.at(r, "Title"));
    }
  }
  AttributeRef target{"Book", "BookTitle"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.ScoreRestricted("Title", restricted, target).confidence);
  }
}
BENCHMARK(BM_ScoreRestricted);

}  // namespace
}  // namespace csm

BENCHMARK_MAIN();
